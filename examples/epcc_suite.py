#!/usr/bin/env python3
"""EPCC mixed-mode scenario: the thread-interaction styles side by side.

The master-only / funneled / serialized kernels verify cleanly (modulo the
conservative loop warnings); the "multiple" kernel — a collective executed
by every thread of the team — is flagged by phase 1 and aborted at run time
by the thread-count check.

Run:  python examples/epcc_suite.py
"""

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench import make_epcc_suite
from repro.core import ErrorCode


def main() -> None:
    # The safe suite: compile, instrument, run to completion.
    safe = make_epcc_suite(reps=2, include_multiple=False, n=8,
                           support_variants=2)
    program = parse_program(safe, "epcc-safe")
    analysis = analyze_program(program)
    print(f"safe suite: {len(safe.splitlines())} LoC, "
          f"{len(analysis.diagnostics)} warnings "
          f"(multithreaded: {analysis.diagnostics.count(ErrorCode.COLLECTIVE_MULTITHREADED)})")
    instrumented, _ = instrument_program(analysis)
    result = run_program(instrumented, nprocs=2, num_threads=2,
                         group_kinds=analysis.group_kinds, timeout=60.0)
    print(f"safe suite run: {result.verdict or 'clean'} "
          f"({result.cc_calls} CC checks passed)")
    assert result.ok, result.error

    # The unsafe "multiple" kernel in isolation.
    unsafe = """
void main() {
    MPI_Init_thread(3);
    #pragma omp parallel num_threads(4)
    {
        work(2000);
        MPI_Barrier();
    }
    MPI_Finalize();
}
"""
    program = parse_program(unsafe, "epcc-multiple")
    analysis = analyze_program(program)
    print("\nunsafe 'multiple' kernel warnings:")
    print(analysis.diagnostics.render())
    instrumented, _ = instrument_program(analysis)
    result = run_program(instrumented, nprocs=2, num_threads=4,
                         group_kinds=analysis.group_kinds, timeout=8.0)
    print(f"unsafe kernel run: {result.verdict} (detected by {result.detected_by})")
    print(f"  {result.error}")


if __name__ == "__main__":
    main()
