#!/usr/bin/env python3
"""Quickstart: the full PARCOACH pipeline on a small buggy hybrid program.

1. static analysis -> typed warnings with collective names + source lines;
2. verification code generation -> CC / thread-count checks inserted;
3. simulated execution -> the instrumented run aborts *before* the deadlock,
   the raw run only "fails" as a machine-level deadlock.

Run:  python examples/quickstart.py
"""

from repro import (
    analyze_program,
    instrument_program,
    parse_program,
    pretty,
    render_report,
    run_program,
)

SOURCE = """
void main() {
    MPI_Init_thread(2);
    int rank = MPI_Comm_rank();
    int x = 0;

    // correct: collective funneled through a single region
    #pragma omp parallel num_threads(4)
    {
        #pragma omp single
        {
            MPI_Barrier();
        }
    }

    // bug: only rank 0 broadcasts -> the others head to Finalize
    if (rank == 0) {
        MPI_Bcast(x, 0);
    }
    MPI_Finalize();
}
"""


def main() -> None:
    program = parse_program(SOURCE, "quickstart")

    print("=== 1. static analysis " + "=" * 40)
    analysis = analyze_program(program)
    print(render_report(analysis, verbose=True))

    print("=== 2. verification code generation " + "=" * 27)
    instrumented, report = instrument_program(analysis)
    print(f"inserted: {report.cc_calls} CC calls, {report.return_ccs} return "
          f"checks, {report.enter_checks} thread-count checks\n")
    print(pretty(instrumented))

    print("=== 3a. instrumented run (2 ranks) " + "=" * 28)
    result = run_program(instrumented, nprocs=2, num_threads=4,
                         group_kinds=analysis.group_kinds, timeout=8.0)
    print(f"verdict: {result.verdict} (detected by {result.detected_by})")
    print(f"  {result.error}\n")

    print("=== 3b. raw run (what the machine sees) " + "=" * 23)
    raw = run_program(program, nprocs=2, num_threads=4, timeout=8.0)
    print(f"verdict: {raw.verdict} (detected by {raw.detected_by})")
    print(f"  {raw.error}")


if __name__ == "__main__":
    main()
