#!/usr/bin/env python3
"""HERA scenario: a multi-physics AMR skeleton with load-balance branches.

The regridding function reduces only on overloaded ranks — the conditional
lands in the iterated post-dominance frontier and the analysis pinpoints it
(function, collective, line).  The instrumented run validates the actual
execution (the balance condition happens to agree on all ranks here).

Run:  python examples/hera_amr.py
"""

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench import make_hera


def main() -> None:
    src = make_hera(levels=2, steps=2, n=16, physics_modules=3)
    print(f"generated HERA-like program: {len(src.splitlines())} LoC")

    program = parse_program(src, "hera")
    analysis = analyze_program(program)
    print(f"\nwarnings ({len(analysis.diagnostics)}):")
    print(analysis.diagnostics.render())

    instrumented, report = instrument_program(analysis)
    print(f"instrumented: {sorted(report.per_function)} "
          f"({report.total} checks)")

    result = run_program(instrumented, nprocs=2, num_threads=2,
                         group_kinds=analysis.group_kinds, timeout=60.0)
    print(f"\nrun verdict: {result.verdict or 'clean'}")
    assert result.ok, result.error
    print(f"CC checks executed: {result.cc_calls} — every warned pattern "
          f"validated dynamically")
    for line in result.outputs[0]:
        print("rank 0:", line)


if __name__ == "__main__":
    main()
