#!/usr/bin/env python3
"""Regenerates Figure 1: average compile-time overhead (%) of the
verification, with and without code generation, for the five benchmarks.

Run:  python examples/figure1_overhead.py [--repeats N]
"""

import argparse

from repro.bench import FIGURE1_BENCHMARKS, benchmark_sources, measure_overheads

PAPER_NOTE = "paper: every bar below 6% (GCC plugin on CEA machines)"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per mode (best-of)")
    args = parser.parse_args()

    sources = benchmark_sources()
    print(f"{'benchmark':<12} {'LoC':>6} {'base (ms)':>10} "
          f"{'warnings %':>11} {'+codegen %':>11}")
    print("-" * 56)
    rows = []
    for name in FIGURE1_BENCHMARKS:
        src = sources[name]
        ov = measure_overheads(src, repeats=args.repeats)
        rows.append((name, ov))
        print(f"{name:<12} {len(src.splitlines()):>6} "
              f"{ov['base'] * 1000:>10.1f} "
              f"{ov['warnings_overhead_pct']:>10.2f}% "
              f"{ov['full_overhead_pct']:>10.2f}%")
    print("-" * 56)
    print(PAPER_NOTE)

    # Poor man's bar chart, like the figure.
    print("\n  overhead in %  (W = warnings, F = warnings + codegen)")
    scale = 1.0
    for name, ov in rows:
        w = max(0.0, ov["warnings_overhead_pct"]) / scale
        f = max(0.0, ov["full_overhead_pct"]) / scale
        print(f"  {name:<12} W |{'#' * int(round(w))} {ov['warnings_overhead_pct']:.1f}")
        print(f"  {'':<12} F |{'#' * int(round(f))} {ov['full_overhead_pct']:.1f}")


if __name__ == "__main__":
    main()
