#!/usr/bin/env python3
"""BT-MZ scenario: analyze, instrument and *execute* a (scaled-down) NAS
BT-MZ-like hybrid workload end to end.

The timestep loop contains the residual Allreduce, which draws PARCOACH's
classic conservative loop warning; the instrumented run then validates every
iteration dynamically — the false-positive-resolution story of the paper.

Run:  python examples/nas_bt_mz.py
"""

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench import make_bt_mz
from repro.core import ErrorCode


def main() -> None:
    src = make_bt_mz(zones=2, steps=3, inner_loops=2, width=2)
    print(f"generated BT-MZ-like program: {len(src.splitlines())} LoC")

    program = parse_program(src, "bt-mz")
    analysis = analyze_program(program)
    mismatches = analysis.diagnostics.by_code(ErrorCode.COLLECTIVE_MISMATCH)
    print(f"warnings: {len(analysis.diagnostics)} "
          f"({len(mismatches)} collective-mismatch)")
    for diag in analysis.diagnostics:
        print("  *", str(diag).splitlines()[0])

    instrumented, report = instrument_program(analysis)
    print(f"\ninstrumented functions: {sorted(report.per_function)} "
          f"({report.total} checks inserted)")

    result = run_program(instrumented, nprocs=2, num_threads=2,
                         group_kinds=analysis.group_kinds, timeout=60.0)
    print(f"\nrun verdict: {result.verdict or 'clean'}")
    assert result.ok, result.error
    print(f"CC checks executed: {result.cc_calls} — all passed")
    for line in result.outputs[0]:
        print("rank 0:", line)


if __name__ == "__main__":
    main()
