#!/usr/bin/env python3
"""The error gallery: every case's static verdict vs dynamic verdicts.

Prints one row per case: which warnings the static pass emits, what the
instrumented run reports (and that it is the *clean* CC/thread-check error,
not a deadlock), and what the raw run degenerates to.

Run:  python examples/bug_gallery.py
"""

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench.errors_gallery import CASES


def main() -> None:
    print(f"{'case':<32} {'static warnings':>16} {'instrumented run':>26} {'raw run':>22}")
    print("-" * 100)
    for name in sorted(CASES):
        case = CASES[name]
        program = parse_program(case.source, name)
        analysis = analyze_program(program)

        instrumented, _ = instrument_program(analysis)
        inst = run_program(instrumented, nprocs=case.nprocs,
                           num_threads=case.num_threads,
                           group_kinds=analysis.group_kinds, timeout=6.0)
        raw = run_program(program, nprocs=case.nprocs,
                          num_threads=case.num_threads, timeout=6.0)

        inst_v = f"{inst.verdict}" if inst.error else "clean"
        if inst.error:
            inst_v += f" [{inst.detected_by}]"
        raw_v = f"{raw.verdict}" if raw.error else "clean"
        print(f"{name:<32} {len(analysis.diagnostics):>16} {inst_v:>26} {raw_v:>22}")
    print("-" * 100)
    print("instrumented verdicts tagged [CC]/[thread-check] abort before the "
          "deadlock;\nraw verdicts are what the machine alone can tell.")


if __name__ == "__main__":
    main()
