"""CLI tests (driving repro.cli.main directly)."""

import pytest

from repro.cli import main

BUGGY = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); }
}
"""

CLEAN = """
void main() {
    MPI_Barrier();
    print("done");
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.mh"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mh"
    path.write_text(CLEAN)
    return str(path)


def test_analyze_flags_buggy(buggy_file, capsys):
    assert main(["analyze", buggy_file]) == 1
    out = capsys.readouterr().out
    assert "collective-mismatch" in out
    assert "MPI_Barrier" in out


def test_analyze_clean_exits_zero(clean_file, capsys):
    assert main(["analyze", clean_file]) == 0
    assert "no warnings" in capsys.readouterr().out


def test_analyze_counting_precision(tmp_path, capsys):
    path = tmp_path / "balanced.mh"
    path.write_text("""
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); } else { MPI_Barrier(); }
}
""")
    assert main(["analyze", str(path)]) == 1
    assert main(["analyze", str(path), "--precision", "counting"]) == 0


def test_analyze_initial_context(clean_file):
    # Assuming the whole file runs inside a parallel region flags everything.
    assert main(["analyze", clean_file, "--initial-context", "P1"]) == 1


def test_instrument_writes_output(buggy_file, tmp_path, capsys):
    out_file = tmp_path / "out.mh"
    assert main(["instrument", buggy_file, "-o", str(out_file)]) == 0
    text = out_file.read_text()
    assert "PARCOACH_CC" in text


def test_instrument_all_inserts_more(clean_file, tmp_path):
    sel = tmp_path / "sel.mh"
    blanket = tmp_path / "all.mh"
    main(["instrument", clean_file, "-o", str(sel)])
    main(["instrument", clean_file, "--all", "-o", str(blanket)])
    assert "PARCOACH_CC" not in sel.read_text()
    assert "PARCOACH_CC" in blanket.read_text()


def test_run_clean_program(clean_file, capsys):
    assert main(["run", clean_file, "-np", "2"]) == 0
    captured = capsys.readouterr()
    assert "[rank 0] done" in captured.out
    assert "clean" in captured.err


def test_run_buggy_instrumented_reports_cc(buggy_file, capsys):
    rc = main(["run", buggy_file, "-np", "2", "--instrument"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "CollectiveMismatchError" in err
    assert "CC" in err


def test_run_buggy_raw_deadlocks(buggy_file, capsys):
    rc = main(["run", buggy_file, "-np", "2", "--timeout", "4"])
    assert rc == 1
    assert "DeadlockError" in capsys.readouterr().err


def test_cfg_dot_output(buggy_file, capsys):
    assert main(["cfg", buggy_file, "main"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "MPI_Barrier" in out


def test_cfg_unknown_function(buggy_file, capsys):
    assert main(["cfg", buggy_file, "nope"]) == 2


def test_semantic_errors_abort(tmp_path, capsys):
    path = tmp_path / "bad.mh"
    path.write_text("void main() { x = 1; }")
    with pytest.raises(SystemExit):
        main(["analyze", str(path)])
