"""CLI tests (driving repro.cli.main directly)."""

import pytest

from repro.cli import main

BUGGY = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); }
}
"""

CLEAN = """
void main() {
    MPI_Barrier();
    print("done");
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.mh"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mh"
    path.write_text(CLEAN)
    return str(path)


def test_analyze_flags_buggy(buggy_file, capsys):
    assert main(["analyze", buggy_file]) == 1
    out = capsys.readouterr().out
    assert "collective-mismatch" in out
    assert "MPI_Barrier" in out


def test_analyze_clean_exits_zero(clean_file, capsys):
    assert main(["analyze", clean_file]) == 0
    assert "no warnings" in capsys.readouterr().out


def test_analyze_counting_precision(tmp_path, capsys):
    path = tmp_path / "balanced.mh"
    path.write_text("""
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); } else { MPI_Barrier(); }
}
""")
    assert main(["analyze", str(path)]) == 1
    assert main(["analyze", str(path), "--precision", "counting"]) == 0


def test_analyze_initial_context(clean_file):
    # Assuming the whole file runs inside a parallel region flags everything.
    assert main(["analyze", clean_file, "--initial-context", "P1"]) == 1


def test_instrument_writes_output(buggy_file, tmp_path, capsys):
    out_file = tmp_path / "out.mh"
    assert main(["instrument", buggy_file, "-o", str(out_file)]) == 0
    text = out_file.read_text()
    assert "PARCOACH_CC" in text


def test_instrument_all_inserts_more(clean_file, tmp_path):
    sel = tmp_path / "sel.mh"
    blanket = tmp_path / "all.mh"
    main(["instrument", clean_file, "-o", str(sel)])
    main(["instrument", clean_file, "--all", "-o", str(blanket)])
    assert "PARCOACH_CC" not in sel.read_text()
    assert "PARCOACH_CC" in blanket.read_text()


def test_run_clean_program(clean_file, capsys):
    assert main(["run", clean_file, "-np", "2"]) == 0
    captured = capsys.readouterr()
    assert "[rank 0] done" in captured.out
    assert "clean" in captured.err


def test_run_buggy_instrumented_reports_cc(buggy_file, capsys):
    rc = main(["run", buggy_file, "-np", "2", "--instrument"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "CollectiveMismatchError" in err
    assert "CC" in err


def test_run_buggy_raw_deadlocks(buggy_file, capsys):
    rc = main(["run", buggy_file, "-np", "2", "--timeout", "4"])
    assert rc == 1
    assert "DeadlockError" in capsys.readouterr().err


def test_cfg_dot_output(buggy_file, capsys):
    assert main(["cfg", buggy_file, "main"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert "MPI_Barrier" in out


def test_cfg_unknown_function(buggy_file, capsys):
    assert main(["cfg", buggy_file, "nope"]) == 2


def test_semantic_errors_abort(tmp_path, capsys):
    path = tmp_path / "bad.mh"
    path.write_text("void main() { x = 1; }")
    # Invalid input is an internal/usage error: exit 2 per the contract
    # (main normalizes the SystemExit raised by _load).
    assert main(["analyze", str(path)]) == 2
    assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Exit-code contract: 0 clean / 1 findings-or-failing / 2 internal-or-
# divergence — one case per subcommand, plus the --help documentation.
# ---------------------------------------------------------------------------


def test_help_documents_exit_codes(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    assert "exit codes" in out
    assert "findings" in out


def test_usage_error_exits_two(capsys):
    assert main(["no-such-subcommand"]) == 2


def test_contract_analyze(buggy_file, clean_file, capsys):
    assert main(["analyze", clean_file]) == 0
    assert main(["analyze", buggy_file]) == 1


def test_contract_batch(buggy_file, clean_file, capsys):
    assert main(["batch", clean_file]) == 0
    assert main(["batch", clean_file, buggy_file]) == 1


def test_contract_instrument_and_cfg_and_callgraph(buggy_file, tmp_path, capsys):
    # Emitters: 0 on success, 2 on a bad target.
    assert main(["instrument", buggy_file, "-o", str(tmp_path / "o.mh")]) == 0
    assert main(["callgraph", buggy_file]) == 0
    assert main(["cfg", buggy_file, "main"]) == 0
    assert main(["cfg", buggy_file, "nope"]) == 2


def test_contract_run(buggy_file, clean_file, capsys):
    assert main(["run", clean_file, "-np", "2"]) == 0
    assert main(["run", buggy_file, "-np", "2", "--instrument"]) == 1


def test_contract_explore(buggy_file, clean_file, capsys):
    assert main(["explore", clean_file, "--runs", "4"]) == 0
    assert main(["explore", buggy_file, "--runs", "4", "--no-minimize"]) == 1


def test_contract_explore_replay_divergence(buggy_file, clean_file, tmp_path,
                                            capsys):
    # Record a failing trace on the buggy program, then replay it against
    # the clean one: the verdict cannot reproduce — exit 2 (divergence).
    trace = tmp_path / "t.trace.json"
    assert main(["explore", buggy_file, "--runs", "4", "--no-minimize",
                 "--save-trace", str(trace)]) == 1
    assert main(["explore", clean_file, "--replay", str(trace)]) == 2


def test_contract_fuzz(capsys, tmp_path):
    # 8 deterministic seeds: no static-miss, no crash — exit 0.
    assert main(["fuzz", "--seeds", "8", "--seed", "0",
                 "--explore-runs", "6"]) == 0
    out = capsys.readouterr().out
    assert "8/8 seeds" in out
