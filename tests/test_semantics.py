"""Semantic checker tests: scoping, arity, OpenMP nesting legality."""

import pytest

from repro.minilang.parser import parse_program
from repro.minilang.semantics import SemanticError, check_program


def errors_of(src):
    return {i.code for i in check_program(parse_program(src)) if i.severity == "error"}


def warnings_of(src):
    return {i.code for i in check_program(parse_program(src)) if i.severity == "warning"}


def test_clean_program_has_no_issues():
    src = """
void helper(int a) { int b = a + 1; print(b); }
void main() { helper(3); }
"""
    assert check_program(parse_program(src)) == []


def test_undeclared_variable():
    assert "UNDECLARED" in errors_of("void f() { x = 1; }")


def test_duplicate_variable_same_scope():
    assert "DUP_VAR" in errors_of("void f() { int x = 1; int x = 2; }")


def test_shadowing_in_inner_scope_allowed():
    assert errors_of("void f() { int x = 1; { int x = 2; print(x); } }") == set()


def test_duplicate_function():
    assert "DUP_FUNC" in errors_of("void f() { } void f() { }")


def test_duplicate_parameter():
    assert "DUP_PARAM" in errors_of("void f(int a, int a) { }")


def test_unknown_function():
    assert "UNKNOWN_FUNC" in errors_of("void f() { nosuch(); }")


def test_user_function_arity():
    assert "ARITY" in errors_of("void g(int a) { } void f() { g(); }")


def test_mpi_collective_arity():
    assert "ARITY" in errors_of("void f() { MPI_Barrier(1); }")
    assert "ARITY" in errors_of("void f() { int x = 0; MPI_Bcast(x); }")


def test_break_outside_loop():
    assert "BREAK_OUTSIDE" in errors_of("void f() { break; }")


def test_continue_outside_loop():
    assert "CONTINUE_OUTSIDE" in errors_of("void f() { continue; }")


def test_break_inside_loop_ok():
    assert errors_of("void f() { while (true) { break; } }") == set()


def test_void_function_returning_value():
    assert "RET_VALUE" in errors_of("void f() { return 3; }")


def test_nonvoid_function_returning_nothing():
    assert "RET_MISSING" in errors_of("int f() { return; }")


def test_strict_mode_raises():
    with pytest.raises(SemanticError):
        check_program(parse_program("void f() { x = 1; }"), strict=True)


def test_strict_mode_ignores_warnings():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            { print(1); }
        }
    }
}
"""
    assert check_program(parse_program(src), strict=True) is not None


# -- OpenMP nesting rules --------------------------------------------------------


def test_barrier_inside_single_illegal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp barrier
        }
    }
}
"""
    assert "BARRIER_NESTING" in errors_of(src)


def test_barrier_inside_master_illegal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp master
        {
            #pragma omp barrier
        }
    }
}
"""
    assert "BARRIER_NESTING" in errors_of(src)


def test_barrier_directly_in_parallel_legal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp barrier
    }
}
"""
    assert "BARRIER_NESTING" not in errors_of(src)


def test_single_inside_single_illegal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp single
            { print(1); }
        }
    }
}
"""
    assert "WORKSHARE_NESTING" in errors_of(src)


def test_for_inside_master_illegal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp master
        {
            #pragma omp for
            for (int i = 0; i < 4; i += 1) { }
        }
    }
}
"""
    assert "WORKSHARE_NESTING" in errors_of(src)


def test_nested_parallel_then_single_legal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp parallel
            {
                #pragma omp single
                { print(1); }
            }
        }
    }
}
"""
    assert "WORKSHARE_NESTING" not in errors_of(src)


def test_return_inside_omp_region_illegal():
    src = """
void f() {
    #pragma omp parallel
    {
        return;
    }
}
"""
    assert "RETURN_IN_OMP" in errors_of(src)


def test_break_out_of_omp_for_illegal():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp for
        for (int i = 0; i < 4; i += 1) { break; }
    }
}
"""
    assert "BREAK_OUTSIDE" in errors_of(src)


def test_break_in_sequential_loop_inside_region_legal():
    src = """
void f() {
    #pragma omp parallel
    {
        while (true) { break; }
    }
}
"""
    assert errors_of(src) == set()


def test_task_emits_model_warning():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            { print(1); }
        }
    }
}
"""
    assert "TASK_MODEL" in warnings_of(src)


def test_clause_with_undeclared_variable():
    src = """
void f() {
    #pragma omp parallel private(nope)
    { }
}
"""
    assert "UNDECLARED" in errors_of(src)


def test_instrumented_builtins_accepted():
    src = """
void f() {
    PARCOACH_CC(1, "MPI_Barrier", 3);
    PARCOACH_ENTER(1, "x");
    PARCOACH_EXIT(1);
}
"""
    assert errors_of(src) == set()
