"""MPI simulator tests: collective data semantics, mismatch and deadlock
detection, thread levels, point-to-point."""

import pytest

from repro.mpi.thread_levels import ThreadLevel
from repro.runtime import DeadlockError, MpiWorld
from repro.runtime.simmpi import ops


def run_world(nprocs, fn, thread_level=ThreadLevel.MULTIPLE, timeout=3.0):
    world = MpiWorld(nprocs, thread_level=thread_level, timeout=timeout)
    return world.run(fn)


# -- data semantics (unit tests on ops.combine) ------------------------------------


def test_bcast_semantics():
    out = ops.combine("MPI_Bcast", (1,), {0: None, 1: "hello", 2: None}, [0, 1, 2])
    assert out == {0: "hello", 1: "hello", 2: "hello"}


def test_reduce_semantics():
    out = ops.combine("MPI_Reduce", (0, "sum"), {0: 1, 1: 2, 2: 3}, [0, 1, 2])
    assert out[0] == 6 and out[1] is None and out[2] is None


def test_allreduce_min_max():
    assert ops.combine("MPI_Allreduce", ("max",), {0: 5, 1: 9}, [0, 1]) == {0: 9, 1: 9}
    assert ops.combine("MPI_Allreduce", ("min",), {0: 5, 1: 9}, [0, 1]) == {0: 5, 1: 5}


def test_gather_scatter():
    g = ops.combine("MPI_Gather", (1,), {0: "a", 1: "b"}, [0, 1])
    assert g[1] == ["a", "b"] and g[0] is None
    s = ops.combine("MPI_Scatter", (0,), {0: [10, 20], 1: None}, [0, 1])
    assert s == {0: 10, 1: 20}


def test_allgather_alltoall():
    ag = ops.combine("MPI_Allgather", (), {0: 7, 1: 8}, [0, 1])
    assert ag == {0: [7, 8], 1: [7, 8]}
    at = ops.combine("MPI_Alltoall", (), {0: [1, 2], 1: [3, 4]}, [0, 1])
    assert at == {0: [1, 3], 1: [2, 4]}


def test_scan_exscan():
    sc = ops.combine("MPI_Scan", ("sum",), {0: 1, 1: 2, 2: 3}, [0, 1, 2])
    assert sc == {0: 1, 1: 3, 2: 6}
    ex = ops.combine("MPI_Exscan", ("sum",), {0: 1, 1: 2, 2: 3}, [0, 1, 2])
    assert ex[0] is None and ex[1] == 1 and ex[2] == 3


def test_reduce_scatter_block():
    out = ops.combine("MPI_Reduce_scatter_block", ("sum",),
                      {0: [1, 2], 1: [10, 20]}, [0, 1])
    assert out == {0: 11, 1: 22}


def test_cc_op_returns_min_max_and_votes():
    out = ops.combine("__CC__", (), {0: 2, 1: 5}, [0, 1])
    mn, mx, votes = out[0]
    assert (mn, mx) == (2, 5)
    assert votes == {0: 2, 1: 5}


def test_scatter_bad_buffer_rejected():
    with pytest.raises(ValueError):
        ops.combine("MPI_Scatter", (0,), {0: 42, 1: None}, [0, 1])


def test_unknown_reduction_rejected():
    with pytest.raises(ValueError):
        ops.reduce_values("xor", [1, 2])


def test_unknown_collective_rejected():
    with pytest.raises(ValueError):
        ops.combine("MPI_Nope", (), {0: 1}, [0])


# -- live engine behaviour --------------------------------------------------------


def test_barrier_and_allreduce_across_ranks():
    def body(proc):
        proc.collective("MPI_Barrier", (), None)
        return proc.collective("MPI_Allreduce", ("sum",), proc.rank + 1)

    result = run_world(3, body)
    assert result.ok, result.error
    assert result.returns == {0: 6, 1: 6, 2: 6}


def test_repeated_collectives_many_rounds():
    def body(proc):
        acc = 0
        for i in range(20):
            acc = proc.collective("MPI_Allreduce", ("sum",), i)
        return acc

    result = run_world(2, body)
    assert result.ok
    assert result.returns[0] == 38  # 19 + 19


def test_mismatched_ops_detected_as_deadlock():
    def body(proc):
        if proc.rank == 0:
            proc.collective("MPI_Barrier", (), None)
        else:
            proc.collective("MPI_Allreduce", ("sum",), 1)

    result = run_world(2, body)
    assert isinstance(result.error, DeadlockError)
    assert "mismatched collective" in str(result.error)


def test_mismatched_roots_detected():
    def body(proc):
        proc.collective("MPI_Bcast", (proc.rank,), 1)

    result = run_world(2, body)
    assert isinstance(result.error, DeadlockError)
    assert "mismatched arguments" in str(result.error)


def test_rank_exiting_early_deadlocks_peers():
    def body(proc):
        if proc.rank == 0:
            proc.collective("MPI_Barrier", (), None)
        # rank 1 returns immediately

    result = run_world(2, body)
    assert isinstance(result.error, DeadlockError)
    assert "finished" in str(result.error)


def test_engine_history_records_rounds():
    def body(proc):
        proc.collective("MPI_Barrier", (), None)
        proc.collective("MPI_Allreduce", ("sum",), 1)

    world = MpiWorld(2, timeout=3.0)
    world.run(body)
    assert [h[0] for h in world.engine.history] == ["MPI_Barrier", "MPI_Allreduce"]


# -- point to point ------------------------------------------------------------------


def test_send_recv_roundtrip():
    def body(proc):
        if proc.rank == 0:
            proc.send(1, 7, "payload")
            return None
        return proc.recv(0, 7)

    result = run_world(2, body)
    assert result.ok
    assert result.returns[1] == "payload"


def test_recv_wildcards():
    def body(proc):
        if proc.rank == 0:
            proc.send(1, 42, "x")
            return None
        return proc.recv(-1, -1)

    result = run_world(2, body)
    assert result.returns[1] == "x"


def test_recv_without_send_deadlocks():
    def body(proc):
        if proc.rank == 1:
            return proc.recv(0, 9)
        return None

    result = run_world(2, body, timeout=1.0)
    assert isinstance(result.error, DeadlockError)


# -- thread-level guard ------------------------------------------------------------------


def test_finalize_then_call_is_error():
    from repro.runtime import MpiRuntimeError

    def body(proc):
        proc.collective("MPI_Finalize", (), None)
        proc.collective("MPI_Barrier", (), None)

    result = run_world(2, body)
    assert isinstance(result.error, MpiRuntimeError)


def test_init_thread_caps_at_world_level():
    def body(proc):
        granted = proc.init_thread(3)
        return granted

    world = MpiWorld(1, thread_level=ThreadLevel.SERIALIZED, timeout=2.0)
    result = world.run(body)
    assert result.returns[0] == ThreadLevel.SERIALIZED.value
