"""OpenMP-like runtime tests: teams, barriers, single claims, worksharing."""

import threading

import pytest

from repro.mpi.thread_levels import ThreadLevel
from repro.runtime import DeadlockError, MpiWorld
from repro.runtime.simomp import Team


def with_world(fn, timeout=3.0):
    world = MpiWorld(1, thread_level=ThreadLevel.MULTIPLE, timeout=timeout)
    return world.run(fn)


def test_team_runs_all_tids():
    seen = []
    lock = threading.Lock()

    def body(proc):
        team = Team(proc.world, proc, 4)

        def tbody(tid):
            with lock:
                seen.append(tid)

        team.run(tbody)

    result = with_world(body)
    assert result.ok
    assert sorted(seen) == [0, 1, 2, 3]


def test_team_size_one_runs_inline():
    def body(proc):
        team = Team(proc.world, proc, 1)
        holder = []
        team.run(lambda tid: holder.append(threading.current_thread()))
        return holder[0] is threading.current_thread()

    result = with_world(body)
    assert result.returns[0] is True


def test_barrier_synchronizes_phases():
    def body(proc):
        team = Team(proc.world, proc, 3)
        phase1 = []
        phase2 = []
        lock = threading.Lock()

        def tbody(tid):
            with lock:
                phase1.append(tid)
            team.barrier()
            # all phase1 entries must exist before any phase2 entry
            with lock:
                assert len(phase1) == 3
                phase2.append(tid)

        team.run(tbody)
        return len(phase2)

    result = with_world(body)
    assert result.ok, result.error
    assert result.returns[0] == 3


def test_single_claim_exactly_one_winner_per_encounter():
    def body(proc):
        team = Team(proc.world, proc, 4)
        wins = {0: [], 1: []}
        lock = threading.Lock()

        def tbody(tid):
            for encounter in (0, 1):
                if team.claim(99, encounter, tid):
                    with lock:
                        wins[encounter].append(tid)
                team.barrier()

        team.run(tbody)
        return {k: len(v) for k, v in wins.items()}

    result = with_world(body)
    assert result.returns[0] == {0: 1, 1: 1}


def test_static_chunks_partition_iteration_space():
    def body(proc):
        team = Team(proc.world, proc, 3)
        chunks = [team.static_chunk(tid, 10) for tid in range(3)]
        flat = [i for c in chunks for i in c]
        return sorted(flat)

    result = with_world(body)
    assert result.returns[0] == list(range(10))


def test_static_chunks_empty_when_fewer_iterations_than_threads():
    def body(proc):
        team = Team(proc.world, proc, 4)
        sizes = [len(team.static_chunk(tid, 2)) for tid in range(4)]
        return sizes

    result = with_world(body)
    assert result.returns[0] == [1, 1, 0, 0]


def test_section_owner_round_robin():
    def body(proc):
        team = Team(proc.world, proc, 2)
        return [team.section_owner(i) for i in range(5)]

    result = with_world(body)
    assert result.returns[0] == [0, 1, 0, 1, 0]


def test_barrier_timeout_when_thread_never_arrives():
    def body(proc):
        team = Team(proc.world, proc, 2)

        def tbody(tid):
            if tid == 0:
                team.barrier()
            # tid 1 never reaches the barrier

        team.run(tbody)

    result = with_world(body, timeout=0.5)
    assert isinstance(result.error, DeadlockError)
    assert "barrier" in str(result.error).lower()


def test_validation_error_in_worker_aborts_world():
    from repro.runtime.errors import ValidationError

    def body(proc):
        team = Team(proc.world, proc, 3)

        def tbody(tid):
            if tid == 2:
                raise ValidationError("boom")
            team.barrier()

        team.run(tbody)

    result = with_world(body, timeout=1.0)
    assert result.error is not None
    assert "boom" in str(result.error)


def test_nested_teams():
    def body(proc):
        outer = Team(proc.world, proc, 2)
        counts = []
        lock = threading.Lock()

        def obody(otid):
            inner = Team(proc.world, proc, 2)

            def ibody(itid):
                with lock:
                    counts.append((otid, itid))

            inner.run(ibody)

        outer.run(obody)
        return sorted(counts)

    result = with_world(body)
    assert result.returns[0] == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_zero_size_team_rejected():
    world = MpiWorld(1)
    with pytest.raises(ValueError):
        Team(world, world.procs[0], 0)
