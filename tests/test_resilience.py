"""Resilience layer: deterministic fault injection, retry/backoff and
deadlines, engine pool fault tolerance, the serve self-heal ladder, and
fuzz campaign survivability (seed timeouts, checkpoint/resume)."""

import io
import json
import pickle
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.engine import AnalysisEngine, EngineStats
from repro.core.report import validate_report
from repro.core.session import AnalysisSession, run_serve, run_watch
from repro.fuzz.campaign import (
    fuzz_one,
    load_checkpoint,
    run_fuzz,
    write_checkpoint,
)
from repro.minilang.parser import parse_program
from repro.util.faultinject import (
    SITES,
    FaultPlan,
    FaultPlanError,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_site,
    install_plan,
)
from repro.util.resilience import (
    Deadline,
    DeadlineExceeded,
    Failure,
    RetryPolicy,
    retry,
)

BASE = """
int helper(int v) {
    return v + 1;
}

void worker() {
    int x = 0;
    x = helper(x);
}

void main() {
    MPI_Init_thread(0);
    worker();
    MPI_Finalize();
}
"""

EDITED = BASE.replace("return v + 1;", "return v + 2;")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


class FakeClock:
    """A monotonic clock advancing a fixed step per call."""

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# -- Deadline / retry / Failure -----------------------------------------------------


def test_deadline_expiry_is_deterministic_with_fake_clock():
    clock = FakeClock(step=0.04)
    deadline = Deadline(0.1, clock=clock)  # start at 0.04
    deadline.check("a")        # elapsed 0.04
    deadline.check("b")        # elapsed 0.08
    with pytest.raises(DeadlineExceeded) as exc:
        while True:
            deadline.check("late")
    assert exc.value.site == "late"
    assert exc.value.budget == pytest.approx(0.1)


def test_deadline_after_ms_and_remaining():
    clock = FakeClock(step=0.0)
    clock.step = 0.0
    deadline = Deadline.after_ms(250.0, clock=clock)
    assert deadline.budget == pytest.approx(0.25)
    assert deadline.remaining() == pytest.approx(0.25)
    assert not deadline.expired


def test_retry_policy_backoff_sequence_is_jitter_free():
    policy = RetryPolicy(attempts=6, base_delay=0.05, multiplier=2.0,
                         max_delay=0.3)
    delays = [policy.delay(k) for k in range(1, 6)]
    assert delays == [0.05, 0.1, 0.2, 0.3, 0.3]


def test_retry_recovers_and_records_structured_failures():
    calls = []
    slept = []
    failures = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ValueError(f"boom {len(calls)}")
        return "ok"

    result = retry(flaky, RetryPolicy(attempts=4, base_delay=0.01),
                   site="test.flaky", sleep=slept.append,
                   failures=failures)
    assert result == "ok"
    assert slept == [0.01, 0.02]
    assert [f.attempt for f in failures] == [1, 2]
    assert failures[0].site == "test.flaky"
    assert failures[0].error_type == "ValueError"


def test_retry_reraises_after_final_attempt():
    slept = []
    with pytest.raises(ValueError):
        retry(lambda: (_ for _ in ()).throw(ValueError("always")),
              RetryPolicy(attempts=3, base_delay=0.01), sleep=slept.append)
    assert len(slept) == 2  # no sleep after the last failure


def test_retry_gives_up_when_deadline_expired():
    clock = FakeClock(step=1.0)
    deadline = Deadline(0.5, clock=clock)  # expired after first tick
    slept = []
    with pytest.raises(ValueError):
        retry(lambda: (_ for _ in ()).throw(ValueError("x")),
              RetryPolicy(attempts=5, base_delay=0.01), sleep=slept.append,
              deadline=deadline)
    assert slept == []  # no sleeping toward a lost budget


def test_failure_digest_is_stable_and_dict_round_trips():
    try:
        raise RuntimeError("same message")
    except RuntimeError as exc:
        a = Failure.from_exception("site", 1, exc)
        b = Failure.from_exception("site", 1, exc)
    assert a.traceback_digest == b.traceback_digest
    assert len(a.traceback_digest) == 16
    doc = json.loads(json.dumps(a.as_dict()))
    assert doc["error_type"] == "RuntimeError"
    assert doc["message"] == "same message"


# -- fault plans --------------------------------------------------------------------


def test_fault_plan_parse_defaults_and_hits():
    plan = FaultPlan.parse(
        "session.analyze=exception, engine.pool.submit:3=broken_pool")
    assert plan.rules["session.analyze"][1] == "exception"
    assert plan.rules["engine.pool.submit"][3] == "broken_pool"


@pytest.mark.parametrize("spec", [
    "nonsense",
    "no.such.site=exception",
    "session.analyze=frobnicate",
    "session.analyze:zero=exception",
    "session.analyze:0=exception",
])
def test_fault_plan_rejects_bad_specs(spec):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(spec)


def test_fault_fires_on_exact_hit_only():
    plan = FaultPlan.parse("session.analyze:2=exception")
    install_plan(plan)
    fault_site("session.analyze")                 # hit 1: no-op
    with pytest.raises(InjectedFault):
        fault_site("session.analyze")             # hit 2: fires
    fault_site("session.analyze")                 # hit 3: never again
    assert [(e.site, e.hit, e.kind) for e in plan.fired] == [
        ("session.analyze", 2, "exception")]


def test_fault_kinds_raise_their_exception_classes():
    plan = FaultPlan.parse(
        "session.read_file:1=oserror,session.read_file:2=broken_pool,"
        "session.read_file:3=pickling,session.read_file:4=timeout,"
        "session.read_file:5=keyboard")
    install_plan(plan)
    for expected in (OSError, BrokenProcessPool, pickle.PicklingError,
                     DeadlineExceeded, KeyboardInterrupt):
        with pytest.raises(expected):
            fault_site("session.read_file")


def test_truncate_halves_the_payload():
    install_plan(FaultPlan.parse("session.read_file:1=truncate"))
    assert fault_site("session.read_file", "abcdefgh") == "abcd"
    assert fault_site("session.read_file", "abcdefgh") == "abcdefgh"


def test_fault_site_is_noop_without_plan():
    assert fault_site("session.analyze") is None
    assert fault_site("session.read_file", "payload") == "payload"


def test_plan_loads_lazily_from_environment(monkeypatch):
    monkeypatch.setenv("PARCOACH_FAULTS", "store.evict:7=oserror")
    clear_plan()  # allow a fresh environment read
    plan = active_plan()
    assert plan is not None and plan.rules["store.evict"][7] == "oserror"


# -- engine pool fault tolerance ----------------------------------------------------


def _analyze_counts(program):
    with AnalysisEngine(jobs=1) as engine:
        return len(engine.analyze(program).diagnostics)


def test_pool_failure_respawns_and_result_is_identical():
    program = parse_program(BASE, "p.mc")
    expected = _analyze_counts(program)
    install_plan(FaultPlan.parse("engine.pool.submit:1=broken_pool"))
    slept = []
    with AnalysisEngine(jobs=2) as engine:
        engine._sleep = slept.append
        analysis = engine.analyze(program)
        assert len(analysis.diagnostics) == expected
        assert engine.stats.pool_failures == 1
        assert engine.stats.pool_respawns == 1
        assert engine.stats.degraded_serial == 0
    assert slept == [engine.POOL_RETRY.delay(1)]


def test_pool_respawn_budget_exhausted_degrades_to_serial():
    program = parse_program(BASE, "p.mc")
    expected = _analyze_counts(program)
    install_plan(FaultPlan.parse(
        "engine.pool.submit:1=broken_pool,engine.pool.submit:2=oserror,"
        "engine.pool.submit:3=pickling"))
    with AnalysisEngine(jobs=2) as engine:
        engine._sleep = lambda _d: None
        analysis = engine.analyze(program)
        assert len(analysis.diagnostics) == expected
        assert engine.stats.pool_failures == 3
        assert engine.stats.pool_respawns == 2
        assert engine.stats.degraded_serial == 1


class _HungFuture:
    def result(self, timeout=None):
        raise FutureTimeoutError()


class _HungPool:
    """A pool whose every task blows its deadline."""

    def submit(self, *_args, **_kwargs):
        return _HungFuture()

    def map(self, *_args, **_kwargs):  # pragma: no cover - timeout path
        raise AssertionError("task_timeout engines must use submit()")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_task_timeout_counts_pool_failure_and_respawns():
    program = parse_program(BASE, "p.mc")
    expected = _analyze_counts(program)
    with AnalysisEngine(jobs=2, task_timeout=30.0) as engine:
        engine._sleep = lambda _d: None
        engine._pool = _HungPool()  # first attempt times out, respawn is real
        analysis = engine.analyze(program)
        assert len(analysis.diagnostics) == expected
        assert engine.stats.pool_failures == 1
        assert engine.stats.pool_respawns == 1


def test_engine_stats_round_trip_with_resilience_counters():
    stats = EngineStats(pool_failures=3, pool_respawns=2, degraded_serial=1)
    doc = json.loads(json.dumps(stats.as_dict()))
    restored = EngineStats.from_dict(doc)
    assert restored.pool_failures == 3
    assert restored.pool_respawns == 2
    assert restored.degraded_serial == 1
    # Old documents (pre-resilience) still load: counters default to 0.
    for key in ("pool_failures", "pool_respawns", "degraded_serial"):
        doc.pop(key)
    legacy = EngineStats.from_dict(doc)
    assert legacy.pool_failures == 0


# -- the serve chaos gate: every site, one at a time --------------------------------

#: Sites the serve script below reaches with jobs=1.  ``engine.pool.submit``
#: is covered separately (needs a pool); all are members of the registry.
SERVE_SITES = (
    "session.read_file",
    "session.parse_chunk",
    "session.analyze",
    "engine.task",
    "store.evict",
    "serve.emit",
)


def _serve_script(path_a, path_b):
    """A 3-analyze serve script with an edit step, handed to run_serve as
    a generator so the edit happens between requests (the ``store.evict``
    site only fires when an update actually evicts fingerprints)."""
    yield f"analyze {path_a}\n"
    yield f"analyze {path_b}\n"
    path_a.write_text(EDITED)
    yield f"analyze {path_a}\n"
    yield "quit\n"


@pytest.mark.parametrize("site", SERVE_SITES)
def test_serve_survives_injected_fault_at_every_site(tmp_path, site):
    assert site in SITES
    path_a = tmp_path / "a.mc"
    path_b = tmp_path / "b.mc"
    path_a.write_text(BASE)
    path_b.write_text("void main() { MPI_Barrier(); }\n")
    plan = FaultPlan.parse(f"{site}:1=exception")
    install_plan(plan)
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=_serve_script(path_a, path_b),
                         stdout=out)
        recoveries = session.recoveries
    assert code == 0
    lines = out.getvalue().splitlines()
    assert len(lines) == 3  # one response per analyze, no dead server
    for line in lines:
        assert validate_report(json.loads(line)) == []
    assert len(plan.fired) == 1, plan.fired
    assert recoveries >= len(plan.fired)


def test_serve_double_fault_escalates_to_rebuild(tmp_path):
    path = tmp_path / "a.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse(
        "session.analyze:1=exception,session.analyze:2=exception"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=iter([f"analyze {path}\n"]),
                         stdout=out)
        assert session.recoveries == 1
        assert session.rebuilds == 1
    assert code == 0
    doc = json.loads(out.getvalue())
    assert doc["verdict"] != "error"  # third attempt succeeded


def test_serve_triple_fault_answers_internal_error_and_keeps_serving(tmp_path):
    path = tmp_path / "a.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse(
        "session.analyze:1=exception,session.analyze:2=exception,"
        "session.analyze:3=exception"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(
            session,
            stdin=iter([f"analyze {path}\n", f"analyze {path}\n", "quit\n"]),
            stdout=out)
        failures = list(session.failures)
    assert code == 0
    first, second = [json.loads(l) for l in out.getvalue().splitlines()]
    assert validate_report(first) == []
    assert first["verdict"] == "error"
    assert first["summary"]["failure"]["error_type"] == "InjectedFault"
    assert first["summary"]["request"] == f"analyze {path}"
    # The next request succeeds: the server healed rather than died.
    assert second["verdict"] in ("clean", "findings")
    assert len(failures) == 3


def test_serve_truncated_read_is_a_session_error_report(tmp_path):
    path = tmp_path / "a.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse("session.read_file:1=truncate"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=iter([f"analyze {path}\n", "quit\n"]),
                         stdout=out)
    assert code == 0
    doc = json.loads(out.getvalue())
    assert doc["verdict"] == "error"  # half a file does not parse
    assert validate_report(doc) == []


def test_serve_emit_fault_still_writes_exactly_one_line(tmp_path):
    path = tmp_path / "a.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse("serve.emit:1=truncate"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=iter([f"analyze {path}\n", "quit\n"]),
                         stdout=out)
        assert session.recoveries == 1
    assert code == 0
    lines = out.getvalue().splitlines()
    assert len(lines) == 1
    assert validate_report(json.loads(lines[0])) == []  # full line, not half


def test_serve_keyboard_interrupt_mid_request_exits_zero(tmp_path):
    path = tmp_path / "a.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse("session.read_file:1=keyboard"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=iter([f"analyze {path}\n"]),
                         stdout=out)
    assert code == 0


# -- watch resilience ---------------------------------------------------------------


def test_watch_keyboard_interrupt_inside_update_returns_zero(tmp_path):
    path = tmp_path / "w.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse("session.read_file:1=keyboard"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_watch(session, str(path), interval=0,
                         stdout=out, sleep=lambda _s: None)
    assert code == 0
    assert out.getvalue() == ""


def test_watch_self_heals_unexpected_exception(tmp_path):
    path = tmp_path / "w.mc"
    path.write_text(BASE)
    install_plan(FaultPlan.parse("session.analyze:1=exception"))
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_watch(session, str(path), interval=0, max_updates=2,
                         stdout=out, sleep=lambda _s: None)
        assert session.recoveries == 1
    assert code == 0
    error, good = [json.loads(l) for l in out.getvalue().splitlines()]
    assert error["verdict"] == "error"
    assert error["summary"]["failure"]["error_type"] == "InjectedFault"
    assert validate_report(error) == []
    assert good["verdict"] in ("clean", "findings")


# -- fuzz campaign survivability ----------------------------------------------------


def test_hung_seed_classifies_crash_timeout_and_campaign_continues():
    install_plan(FaultPlan.parse("fuzz.seed:2=hang"))
    report = run_fuzz(seeds=3, base_seed=0, seed_timeout=0.3)
    assert report.completed == 3
    assert report.counts["crash"] == 1
    (timed_out,) = [o for o in report.disagreements
                    if o.classification == "crash"]
    assert timed_out.verdict.crash_detail.startswith("timeout:")
    assert report.exit_code() == 2


def test_injected_seed_exception_classifies_crash_not_abort():
    install_plan(FaultPlan.parse("fuzz.seed:1=exception"))
    report = run_fuzz(seeds=2, base_seed=0)
    assert report.completed == 2
    assert report.counts["crash"] == 1
    detail = report.disagreements[0].verdict.crash_detail
    assert detail.startswith("seed body: InjectedFault")


def test_seed_timeout_unset_means_no_thread_indirection():
    outcome = fuzz_one(0)
    outcome_timed = fuzz_one(0, seed_timeout=30.0)
    assert outcome.classification == outcome_timed.classification
    assert outcome.verdict.as_dict() == outcome_timed.verdict.as_dict()


def test_checkpoint_written_after_every_seed(tmp_path):
    ck = tmp_path / "fuzz.ckpt"
    report = run_fuzz(seeds=4, base_seed=0, checkpoint=str(ck))
    doc = json.loads(ck.read_text())
    assert doc["completed"] == 4
    assert doc["counts"] == dict(report.counts)
    assert not (tmp_path / "fuzz.ckpt.tmp").exists()  # atomic rename


def test_killed_campaign_resumes_to_identical_tally(tmp_path):
    full = run_fuzz(seeds=12, base_seed=0)
    # Simulate the kill: checkpoint after 5 of 12 seeds.
    ck = tmp_path / "fuzz.ckpt"
    partial = run_fuzz(seeds=5, base_seed=0, checkpoint=str(ck))
    doc = json.loads(ck.read_text())
    doc["requested"] = 12  # what a killed 12-seed campaign records
    ck.write_text(json.dumps(doc))
    resumed = run_fuzz(seeds=12, base_seed=0, checkpoint=str(ck),
                       resume=True)
    assert resumed.completed == 12
    assert partial.completed == 5
    assert dict(resumed.counts) == dict(full.counts)
    assert ([o.seed for o in resumed.disagreements]
            == [o.seed for o in full.disagreements])
    assert resumed.overapprox_seeds == full.overapprox_seeds
    # Disagreement sources were regenerated from the absolute seed.
    for ours, theirs in zip(resumed.disagreements, full.disagreements):
        assert ours.source == theirs.source


def test_resume_of_completed_campaign_runs_nothing(tmp_path):
    ck = tmp_path / "fuzz.ckpt"
    first = run_fuzz(seeds=6, base_seed=0, checkpoint=str(ck))
    again = run_fuzz(seeds=6, base_seed=0, checkpoint=str(ck), resume=True)
    assert again.completed == 6
    assert dict(again.counts) == dict(first.counts)


def test_checkpoint_range_mismatch_is_rejected(tmp_path):
    ck = tmp_path / "fuzz.ckpt"
    report = run_fuzz(seeds=3, base_seed=0)
    write_checkpoint(str(ck), report)
    with pytest.raises(ValueError):
        load_checkpoint(str(ck), seeds=3, base_seed=99)
    with pytest.raises(ValueError):
        load_checkpoint(str(ck), seeds=44, base_seed=0)
