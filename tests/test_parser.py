"""Unit tests for the minilang parser."""

import pytest

from repro.minilang import ast_nodes as A
from repro.minilang.parser import ParseError, parse_function, parse_program


def body(src):
    return parse_function(f"void f() {{ {src} }}").body.stmts


def expr(src):
    stmts = body(f"x = {src};")
    return stmts[0].value


def test_empty_program():
    prog = parse_program("")
    assert prog.funcs == []


def test_function_with_params():
    func = parse_function("int add(int a, float b) { return a; }")
    assert func.name == "add"
    assert func.ret_type == "int"
    assert [(p.type_name, p.name) for p in func.params] == [("int", "a"), ("float", "b")]


def test_vardecl_with_init():
    (decl,) = body("int x = 3;")
    assert isinstance(decl, A.VarDecl)
    assert decl.name == "x"
    assert isinstance(decl.init, A.IntLit) and decl.init.value == 3


def test_array_declaration():
    (decl,) = body("float a[10];")
    assert decl.array_size.value == 10


def test_assignment_ops():
    stmts = body("x = 1; x += 2; x -= 3; x *= 4; x /= 5;")
    assert [s.op for s in stmts] == ["=", "+=", "-=", "*=", "/="]


def test_increment_desugars_to_plus_equal_one():
    (stmt,) = body("x++;")
    assert isinstance(stmt, A.Assign)
    assert stmt.op == "+=" and stmt.value.value == 1


def test_decrement_desugars():
    (stmt,) = body("x--;")
    assert stmt.op == "-=" and stmt.value.value == 1


def test_array_element_assignment():
    (stmt,) = body("a[i + 1] = 2;")
    assert isinstance(stmt.target, A.ArrayRef)
    assert isinstance(stmt.target.index, A.BinOp)


def test_precedence_mul_over_add():
    e = expr("1 + 2 * 3")
    assert e.op == "+"
    assert e.right.op == "*"


def test_precedence_comparison_over_and():
    e = expr("a < b && c > d")
    assert e.op == "&&"
    assert e.left.op == "<" and e.right.op == ">"


def test_precedence_and_over_or():
    e = expr("a || b && c")
    assert e.op == "||"
    assert e.right.op == "&&"


def test_parentheses_override():
    e = expr("(1 + 2) * 3")
    assert e.op == "*"
    assert e.left.op == "+"


def test_unary_operators():
    e = expr("-a + !b")
    assert e.op == "+"
    assert isinstance(e.left, A.UnaryOp) and e.left.op == "-"
    assert isinstance(e.right, A.UnaryOp) and e.right.op == "!"


def test_left_associativity():
    e = expr("a - b - c")
    assert e.op == "-"
    assert e.left.op == "-"  # (a-b)-c


def test_call_with_args():
    e = expr("min(a, b + 1)")
    assert isinstance(e, A.Call)
    assert e.name == "min" and len(e.args) == 2


def test_if_without_else():
    (stmt,) = body("if (x > 0) { y = 1; }")
    assert isinstance(stmt, A.If)
    assert stmt.else_body is None


def test_if_else_with_bare_statements():
    (stmt,) = body("if (x > 0) y = 1; else y = 2;")
    assert isinstance(stmt.then_body, A.Block)
    assert isinstance(stmt.else_body, A.Block)
    assert len(stmt.then_body.stmts) == 1


def test_while_loop():
    (stmt,) = body("while (i < 10) { i += 1; }")
    assert isinstance(stmt, A.While)


def test_for_loop_parts():
    (stmt,) = body("for (int i = 0; i < 10; i += 1) { x = i; }")
    assert isinstance(stmt.init, A.VarDecl)
    assert isinstance(stmt.cond, A.BinOp)
    assert isinstance(stmt.step, A.Assign)


def test_for_loop_with_increment_step():
    (stmt,) = body("for (int i = 0; i < 10; i++) { }")
    assert stmt.step.op == "+="


def test_for_loop_empty_parts():
    (stmt,) = body("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_break_continue_return():
    stmts = body("while (true) { break; continue; } return;")
    inner = stmts[0].body.stmts
    assert isinstance(inner[0], A.Break)
    assert isinstance(inner[1], A.Continue)
    assert isinstance(stmts[1], A.Return)


# -- OpenMP ----------------------------------------------------------------


def test_omp_parallel_with_clauses():
    (stmt,) = body("int t = 2; #pragma omp parallel num_threads(t) private(x, y)\n{ }")[1:]
    assert isinstance(stmt, A.OmpParallel)
    assert isinstance(stmt.num_threads, A.VarRef)
    assert stmt.private == ["x", "y"]


def test_omp_single_nowait():
    (stmt,) = body("#pragma omp single nowait\n{ }")
    assert isinstance(stmt, A.OmpSingle)
    assert stmt.nowait


def test_omp_master_and_critical():
    stmts = body("#pragma omp master\n{ }\n#pragma omp critical (lck)\n{ }")
    assert isinstance(stmts[0], A.OmpMaster)
    assert isinstance(stmts[1], A.OmpCritical)
    assert stmts[1].name == "lck"


def test_omp_barrier_has_no_body():
    stmts = body("#pragma omp barrier\nx = 1;")
    assert isinstance(stmts[0], A.OmpBarrier)
    assert isinstance(stmts[1], A.Assign)


def test_omp_for():
    (stmt,) = body("#pragma omp for nowait\nfor (int i = 0; i < 4; i += 1) { }")
    assert isinstance(stmt, A.OmpFor)
    assert stmt.nowait
    assert isinstance(stmt.loop, A.For)


def test_omp_parallel_for_combined():
    (stmt,) = body("#pragma omp parallel for num_threads(2)\nfor (int i = 0; i < 4; i += 1) { }")
    assert isinstance(stmt, A.OmpParallel)
    (inner,) = stmt.body.stmts
    assert isinstance(inner, A.OmpFor)


def test_omp_sections():
    src = """
    #pragma omp sections nowait
    {
        #pragma omp section
        { x = 1; }
        #pragma omp section
        { x = 2; }
    }
    """
    (stmt,) = body(src)
    assert isinstance(stmt, A.OmpSections)
    assert stmt.nowait
    assert len(stmt.sections) == 2


def test_omp_task():
    (stmt,) = body("#pragma omp task\n{ x = 1; }")
    assert isinstance(stmt, A.OmpTask)


def test_omp_schedule_clause():
    (stmt,) = body("#pragma omp for schedule(static, 4)\nfor (int i = 0; i < 4; i += 1) { }")
    assert stmt.schedule == "static"


def test_non_omp_pragma_rejected():
    with pytest.raises(ParseError):
        body("#pragma ivdep\nx = 1;")


def test_unknown_directive_rejected():
    with pytest.raises(ParseError):
        body("#pragma omp simd\nx = 1;")


def test_unknown_clause_rejected():
    with pytest.raises(ParseError):
        body("#pragma omp parallel collapse(2)\n{ }")


def test_missing_semicolon_is_error():
    with pytest.raises(ParseError):
        body("x = 1")


def test_unterminated_block_is_error():
    with pytest.raises(ParseError):
        parse_program("void f() { x = 1;")


def test_assignment_to_literal_is_error():
    with pytest.raises(ParseError):
        body("3 = x;")


def test_mpi_call_statement():
    stmts = body('MPI_Reduce(a, b, "sum", 0);')
    call = stmts[0].expr
    assert call.name == "MPI_Reduce"
    assert isinstance(call.args[2], A.StringLit)


def test_line_numbers_recorded():
    prog = parse_program("void f()\n{\n    x = 1;\n}\n")
    assign = prog.funcs[0].body.stmts[0]
    assert assign.line == 3
