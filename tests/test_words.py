"""Parallelism-word computation and language-L membership tests."""

import pytest

from repro.minilang import ast_nodes as A
from repro.minilang.parser import parse_function
from repro.parallelism import (
    B,
    EMPTY,
    P,
    S,
    common_prefix,
    compute_words,
    count_barriers,
    format_word,
    in_language,
    is_monothreaded,
    parse_word,
    strip_barriers,
)


def word_at_collective(src, name="MPI_Barrier", initial=EMPTY):
    func = parse_function(src)
    info = compute_words(func, initial)
    for node in func.walk():
        if isinstance(node, A.ExprStmt) and isinstance(node.expr, A.Call) \
                and node.expr.name == name:
            return info.words[node.uid]
    raise AssertionError(f"no {name} in program")


# -- the language L -------------------------------------------------------------


@pytest.mark.parametrize("text,expected", [
    ("", True),
    ("S1", True),
    ("P1 S2", True),
    ("P1 B S2", True),
    ("P1 B B S2", True),
    ("S1 P2 S3", True),
    ("P1 S2 P3 S4", True),
    ("P1", False),
    ("P1 B", False),
    ("P1 P2 S3", False),
    ("B", False),         # strict language has no stray barrier
    ("P1 S2 P3", False),
])
def test_strict_language(text, expected):
    assert in_language(parse_word(text)) is expected


@pytest.mark.parametrize("text,expected", [
    ("", True),
    ("P1 S2", True),
    ("P1 B S2", True),
    ("P1 S2 B S3", True),   # B after nested close inside a single: still mono
    ("B", True),            # barriers alone don't add parallelism
    ("P1", False),
    ("P1 P2 S3", False),
    ("P1 S2 P3", False),
])
def test_monothreaded_predicate(text, expected):
    assert is_monothreaded(parse_word(text)) is expected


def test_monothreaded_agrees_with_strict_language_on_l_words():
    for text in ["", "S1", "P1 S2", "P1 B S2", "S1 S2", "P1 S2 P3 S4"]:
        word = parse_word(text)
        assert in_language(word)
        assert is_monothreaded(word)


# -- word construction -------------------------------------------------------------


def test_collective_at_top_level_has_empty_word():
    assert word_at_collective("void f() { MPI_Barrier(); }") == EMPTY


def test_collective_in_parallel_is_p():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    { MPI_Barrier(); }
}
""")
    assert len(word) == 1 and isinstance(word[0], P)
    assert not is_monothreaded(word)


def test_collective_in_single_is_ps():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    assert [type(t) for t in word] == [P, S]
    assert is_monothreaded(word)


def test_collective_in_master_is_ps_master_kind():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp master
        { MPI_Barrier(); }
    }
}
""")
    assert isinstance(word[1], S) and word[1].kind == "master"


def test_barrier_token_recorded_between_regions():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp barrier
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    assert [type(t) for t in word] == [P, B, S]


def test_single_implicit_barrier_appears_for_following_code():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        { print(1); }
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    # first single's end barrier precedes the second single
    assert count_barriers(word) == 1


def test_single_nowait_suppresses_barrier():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single nowait
        { print(1); }
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    assert count_barriers(word) == 0


def test_word_resets_after_region_closes():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    { print(1); }
    MPI_Barrier();
}
""")
    # the top-level join leaves the empty (monothreaded) context
    assert word == EMPTY


def test_nested_parallel_gives_pp():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp parallel
        { MPI_Barrier(); }
    }
}
""")
    assert [type(t) for t in word] == [P, P]
    assert not is_monothreaded(word)


def test_single_then_nested_parallel_single_is_monothreaded():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp parallel
            {
                #pragma omp single
                { MPI_Barrier(); }
            }
        }
    }
}
""")
    assert [type(t) for t in word] == [P, S, P, S]
    assert is_monothreaded(word)


def test_omp_for_keeps_parallel_level():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp for
        for (int i = 0; i < 4; i += 1) { MPI_Barrier(); }
    }
}
""")
    assert [type(t) for t in word] == [P]


def test_sections_give_section_tokens():
    func = parse_function("""
void f() {
    #pragma omp parallel
    {
        #pragma omp sections
        {
            #pragma omp section
            { MPI_Barrier(); }
            #pragma omp section
            { MPI_Allreduce(x, y, "sum"); }
        }
    }
}
""")
    info = compute_words(func)
    words = [
        info.words[n.uid] for n in func.walk()
        if isinstance(n, A.ExprStmt) and isinstance(n.expr, A.Call)
        and n.expr.name.startswith("MPI_")
    ]
    assert len(words) == 2
    w1, w2 = words
    assert isinstance(w1[1], S) and w1[1].kind == "section"
    assert isinstance(w2[1], S) and w2[1].kind == "section"
    assert w1[1].region_id != w2[1].region_id
    assert count_barriers(w1) == count_barriers(w2)


def test_critical_does_not_change_word():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp critical
        { MPI_Barrier(); }
    }
}
""")
    assert [type(t) for t in word] == [P]


def test_task_is_conservatively_parallel():
    word = word_at_collective("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            #pragma omp task
            { MPI_Barrier(); }
        }
    }
}
""")
    assert [type(t) for t in word] == [P, S, P]
    assert not is_monothreaded(word)


def test_initial_word_prefixes_everything():
    initial = parse_word("P9")
    word = word_at_collective("void f() { MPI_Barrier(); }", initial=initial)
    assert word == initial
    assert not is_monothreaded(word)


def test_control_flow_does_not_change_word():
    word = word_at_collective("""
void f(int x) {
    #pragma omp parallel
    {
        #pragma omp single
        {
            if (x > 0) {
                while (x > 1) { x -= 1; }
                MPI_Barrier();
            }
        }
    }
}
""")
    assert [type(t) for t in word] == [P, S]


def test_enclosing_constructs_tracked():
    func = parse_function("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    info = compute_words(func)
    for node in func.walk():
        if isinstance(node, A.ExprStmt):
            chain = info.enclosing[node.uid]
            kinds = [info.construct_kinds[uid] for uid in chain]
            assert kinds == ["parallel", "single"]


# -- word utilities ------------------------------------------------------------------


def test_format_word():
    assert format_word(EMPTY) == "ε"
    assert format_word(parse_word("P1 B S2")) == "P1 B S2"


def test_common_prefix():
    w1 = parse_word("P1 S2 B")
    w2 = parse_word("P1 S3")
    assert common_prefix(w1, w2) == parse_word("P1")


def test_strip_barriers():
    assert strip_barriers(parse_word("P1 B B S2")) == parse_word("P1 S2")


def test_parse_word_rejects_garbage():
    with pytest.raises(ValueError):
        parse_word("Q7")
