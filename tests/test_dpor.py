"""Dynamic partial-order reduction tests: the soundness property (DPOR
visits a subset of the bounded-DFS schedules yet finds the identical
verdict set), the headline reduction on the seeded racy gallery case, the
byte-identical parallel frontier (``--jobs``), footprint commutativity,
trace v1/v2 compatibility, random-strategy dedupe and the wall-clock
budget."""

import json

import pytest

from repro import parse_program
from repro.bench.errors_gallery import (
    CASES,
    interprocedural_cases,
    schedule_sensitive_cases,
)
from repro.explore import (
    DporStrategy,
    ExploreConfig,
    RunRecord,
    ScheduleTrace,
    conflicts,
    explore_config,
    replay,
    verdict_line,
)
from repro.explore.footprint import (
    WILDCARD,
    footprint_from_list,
    footprint_to_list,
)

PROPERTY_CASES = sorted(set(schedule_sensitive_cases())
                        | set(interprocedural_cases()))


def _program(name):
    return parse_program(CASES[name].source, name)


def _explore(name, strategy, **kwargs):
    case = CASES[name]
    config = ExploreConfig(nprocs=case.nprocs, num_threads=case.num_threads)
    kwargs.setdefault("runs", 5000)
    kwargs.setdefault("preemptions", 1)
    kwargs.setdefault("minimize", False)
    return explore_config(_program(name), config, strategy=strategy, **kwargs)


# -- the soundness property --------------------------------------------------------


@pytest.mark.parametrize("name", PROPERTY_CASES)
def test_dpor_schedules_subset_of_dfs_with_identical_verdicts(name):
    dfs = _explore(name, "dfs", collect_schedules=True)
    dpor = _explore(name, "dpor", collect_schedules=True)
    # The DFS sweep must have exhausted the bounded tree, otherwise the
    # subset comparison would be against a truncated baseline.
    assert dfs.schedules < 5000
    assert set(dpor.schedule_choices) <= set(dfs.schedule_choices)
    assert set(dpor.verdict_counts) == set(dfs.verdict_counts)
    assert (dpor.failed > 0) == (dfs.failed > 0)


def test_dpor_reduction_on_racy_single_worker_allreduce_nt3():
    """The ISSUE's headline: ≥ 10× fewer schedules at nt=3, same verdicts."""
    program = _program("racy_single_worker_allreduce")
    config = ExploreConfig(nprocs=2, num_threads=3)
    dfs = explore_config(program, config, strategy="dfs", runs=5000,
                         preemptions=1, minimize=False)
    dpor = explore_config(program, config, strategy="dpor", runs=5000,
                          preemptions=1, minimize=False)
    assert dfs.schedules < 5000
    assert set(dpor.verdict_counts) == set(dfs.verdict_counts)
    assert "DeadlockError" in dpor.verdict_counts
    assert dfs.schedules >= 10 * dpor.schedules
    assert dpor.dpor_stats is not None
    assert dpor.dpor_stats["independent_skips"] > 0


def test_dpor_summary_reports_pruning():
    report = _explore("racy_single_worker_allreduce", "dpor")
    assert "dpor: pushed" in report.summary()
    assert "independent" in report.summary()


# -- parallel frontier -------------------------------------------------------------


def test_dpor_jobs_output_is_byte_identical_to_serial():
    # One parse: construct uids embedded in decision points are a
    # per-parse counter, and the comparison is on verbatim trace text.
    program = _program("racy_single_worker_allreduce")
    config = ExploreConfig(nprocs=2, num_threads=2)

    def snapshot(jobs):
        r = explore_config(program, config, strategy="dpor", runs=5000,
                           preemptions=1, minimize=False, jobs=jobs,
                           collect_schedules=True)
        return (r.schedules, dict(r.verdict_counts), r.dpor_stats,
                r.schedule_choices,
                [(f.index, f.verdict, f.trace.choices) for f in r.failures],
                r.summary())

    serial = snapshot(1)
    assert snapshot(2) == serial
    assert snapshot(3) == serial


# -- footprints --------------------------------------------------------------------


def test_footprint_commutativity_relation():
    r = frozenset({("mbox:r1", "r")})
    w = frozenset({("mbox:r1", "w")})
    other = frozenset({("mbox:r2", "w")})
    arrive = frozenset({("comm", "c:MPI_Barrier")})
    arrive2 = frozenset({("comm", "c:MPI_Bcast")})
    assert not conflicts(r, r)            # read/read commutes
    assert conflicts(r, w)                # read/write on one object races
    assert conflicts(w, w)
    assert not conflicts(w, other)        # distinct objects commute
    assert not conflicts(arrive, arrive)  # same-op arrivals commute
    assert conflicts(arrive, arrive2)     # different collectives race
    assert conflicts(WILDCARD, r)         # unknown steps conflict with all
    assert not conflicts(frozenset(), WILDCARD)  # pure-local steps never do


def test_footprint_list_roundtrip():
    fp = frozenset({("claim:r0u3", "w"), ("bar:r0", "c:arrive")})
    assert footprint_from_list(footprint_to_list(fp)) == fp


# -- trace format compatibility ----------------------------------------------------


def test_v2_trace_carries_footprints_and_fingerprints(tmp_path):
    report = _explore("racy_single_worker_allreduce", "dpor")
    trace = report.failures[0].trace
    data = trace.to_dict()
    assert data["version"] == 2
    assert any("f" in c for c in data["choices"])
    path = tmp_path / "t.json"
    trace.save(str(path))
    loaded = ScheduleTrace.load(str(path))
    assert loaded.choices == trace.choices
    assert loaded.step_footprints == trace.step_footprints


def test_v1_trace_replays_under_v2_reader():
    report = _explore("racy_single_worker_allreduce", "dpor")
    trace = report.failures[0].trace
    data = trace.to_dict()
    # Rewrite as the v1 schema: no footprint / fingerprint keys.
    data["version"] = 1
    for choice in data["choices"]:
        choice.pop("f", None)
        choice.pop("sf", None)
    old = ScheduleTrace.from_dict(json.loads(json.dumps(data)))
    assert old.choices == trace.choices
    result, _, divergences = replay(_program("racy_single_worker_allreduce"),
                                    old)
    assert divergences == 0
    assert verdict_line(result) == trace.verdict


# -- random dedupe and budget ------------------------------------------------------


def test_random_strategy_resamples_duplicates():
    report = _explore("racy_single_worker_allreduce", "random",
                      runs=40, seed=7)
    assert report.schedules == 40          # duplicates never eat the quota
    assert report.duplicates_skipped > 0
    assert "duplicates resampled" in report.summary()
    assert "DeadlockError" in report.verdict_counts


def test_budget_zero_stops_early_with_partial_summary():
    report = _explore("racy_single_worker_allreduce", "dfs", budget=0.0)
    assert report.budget_exhausted
    assert report.schedules <= 1
    assert "budget exhausted (partial)" in report.summary()


def test_budget_allows_clean_partial_dpor_sweep():
    report = _explore("interproc_recursive_barrier", "dpor", budget=0.0)
    assert report.budget_exhausted
    assert "budget exhausted (partial)" in report.summary()


# -- driver-level invariants -------------------------------------------------------


def test_dpor_driver_wave_order_is_independent_of_wave_size():
    """The FIFO driver expands nodes in push order whatever the wave size —
    exercised here without any scheduler, over canned records."""
    program = _program("racy_flag_guarded_barrier")
    case = CASES["racy_flag_guarded_barrier"]
    config = ExploreConfig(nprocs=case.nprocs, num_threads=case.num_threads)

    from repro.explore.explore import _dpor_worker

    def sweep(wave_size):
        driver = DporStrategy(preemption_bound=1)
        order = []

        def execute_wave(prefixes):
            records = []
            for prefix in prefixes:
                order.append(tuple(prefix))
                _, record = _dpor_worker(
                    (program, config, None, prefix, 1, True))
                records.append(record)
            return records

        for _ in driver.explore(execute_wave, max_runs=64,
                                wave_size=wave_size):
            pass
        return order, driver.stats.as_dict()

    assert sweep(1) == sweep(4)


def test_run_record_is_picklable():
    import pickle

    program = _program("racy_single_worker_allreduce")
    config = ExploreConfig(nprocs=2, num_threads=2)
    from repro.explore.explore import _dpor_worker
    trace, record = _dpor_worker((program, config, None, [], 1, True))
    blob = pickle.dumps((trace, record))
    trace2, record2 = pickle.loads(blob)
    assert record2.events == record.events
    assert record2.fingerprints == record.fingerprints
    assert isinstance(record2, RunRecord)
