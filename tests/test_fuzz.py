"""Differential-fuzzing subsystem tests.

Covers the four fuzz modules (generator, oracle, reducer, campaign), the
shared ddmin extraction, cross-*process* generator/oracle determinism (the
guard against dict-order and ``id()`` leakage), and the checked-in
``tests/corpus/`` counterexample replay — every corpus entry must keep
reproducing the verdict recorded when it was reduced.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.fuzz import (
    AGREE,
    CRASH,
    MUTANT_STRIDE,
    STATIC_MISS,
    STATIC_OVERAPPROX,
    FuzzReport,
    GenConfig,
    OracleConfig,
    OracleVerdict,
    fuzz_one,
    generate_program,
    load_corpus,
    mutate,
    program_for_seed,
    reduce_source,
    run_fuzz,
    run_oracle,
)
from repro.minilang.parser import parse_program
from repro.minilang.semantics import check_program

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _well_formed(source: str) -> bool:
    issues = check_program(parse_program(source, "<test>"))
    return not [i for i in issues if i.severity == "error"]


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


def test_generated_programs_are_well_formed():
    for seed in range(40):
        assert _well_formed(generate_program(seed)), f"seed {seed}"


def test_generator_in_process_determinism():
    for seed in (0, 3, 17):
        assert generate_program(seed) == generate_program(seed)


def test_generator_covers_key_constructs():
    """The weighted grammar actually reaches the constructs the oracle is
    supposed to stress (over a modest seed range)."""
    blob = "\n".join(generate_program(seed) for seed in range(60))
    assert "#pragma omp parallel" in blob
    assert "#pragma omp single" in blob
    assert "#pragma omp master" in blob
    assert "#pragma omp critical" in blob
    assert "if (r" in blob                # rank-guarded control flow
    assert "= helper" in blob             # expression-level helper call
    assert "MPI_Init_thread" in blob
    assert any(c in blob for c in ("MPI_Barrier", "MPI_Allreduce"))


def test_generator_weights_disable_productions():
    config = GenConfig(w_parallel=0, w_single=0, w_master=0, w_critical=0,
                       w_barrier=0)
    blob = "\n".join(generate_program(seed, config) for seed in range(20))
    assert "#pragma omp" not in blob


def test_mutate_is_deterministic_and_well_formed():
    for seed in (1, 5, 9):
        source = generate_program(seed)
        m1 = mutate(source, seed + 100)
        m2 = mutate(source, seed + 100)
        assert m1 == m2
        assert _well_formed(m1)


def test_mutate_changes_some_programs():
    changed = sum(
        mutate(generate_program(seed), seed + 7) != generate_program(seed)
        for seed in range(12))
    assert changed >= 6  # most programs offer at least one legal mutation


def test_program_for_seed_applies_mutant_stride():
    seed = MUTANT_STRIDE - 1  # the first mutated seed
    assert program_for_seed(seed) == mutate(generate_program(seed), seed)


# ---------------------------------------------------------------------------
# Cross-process determinism (dict-order / id() leakage guard)
# ---------------------------------------------------------------------------


_SUBPROCESS_SNIPPET = """
import hashlib, json, sys
from repro.fuzz import OracleConfig, program_for_seed, run_oracle
out = {}
for seed in (0, 7, 23):
    out[str(seed)] = hashlib.sha256(
        program_for_seed(seed).encode()).hexdigest()
out["oracle23"] = run_oracle(
    program_for_seed(23), OracleConfig()).as_dict()
print(json.dumps(out))
"""


def _run_in_fresh_process() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout)


def test_generator_and_oracle_deterministic_across_processes():
    fresh = _run_in_fresh_process()
    for seed in (0, 7, 23):
        local = hashlib.sha256(program_for_seed(seed).encode()).hexdigest()
        assert fresh[str(seed)] == local, f"seed {seed} differs across processes"
    local_verdict = run_oracle(program_for_seed(23), OracleConfig()).as_dict()
    assert fresh["oracle23"] == local_verdict


# ---------------------------------------------------------------------------
# Oracle
# ---------------------------------------------------------------------------


def test_oracle_agrees_on_clean_program():
    verdict = run_oracle("""
void main() {
    MPI_Init_thread(0);
    MPI_Barrier();
    MPI_Finalize();
}
""")
    assert verdict.classification == AGREE
    assert not verdict.static_warned
    assert not verdict.dynamic_failed


def test_oracle_agrees_on_canonical_bug():
    verdict = run_oracle("""
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); }
}
""")
    assert verdict.classification == AGREE
    assert "collective-mismatch" in verdict.static_interproc
    assert verdict.dynamic_failed
    assert verdict.raw_verdict.startswith("DeadlockError")
    assert verdict.instrumented_verdict.startswith("CollectiveMismatchError")


def test_oracle_tracks_overapproximation():
    # Both branches execute the same collective: dynamically clean in every
    # schedule, statically flagged under paper precision.
    verdict = run_oracle("""
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); } else { MPI_Barrier(); }
}
""")
    assert verdict.classification == STATIC_OVERAPPROX
    assert verdict.explored > 0 and verdict.explored_failed == 0


def test_oracle_classifies_invalid_input_as_crash():
    verdict = run_oracle("void main() { x = 1; }")
    assert verdict.classification == CRASH
    assert "semantic" in verdict.crash_detail
    verdict = run_oracle("void main() {")
    assert verdict.classification == CRASH
    assert "parse" in verdict.crash_detail


def test_oracle_verdict_round_trips_through_json():
    verdict = run_oracle(program_for_seed(23))
    clone = OracleVerdict.from_dict(
        json.loads(json.dumps(verdict.as_dict())))
    assert clone.as_dict() == verdict.as_dict()
    assert clone.classification == verdict.classification


# ---------------------------------------------------------------------------
# Regressions for fuzz-found bugs (also present as corpus entries)
# ---------------------------------------------------------------------------


def test_deadcode_expression_call_does_not_crash_static():
    """Fuzz seed 469: expression call to a collective helper in dead code
    anchored a PDF+ point on a pruned CFG block (KeyError)."""
    verdict = run_oracle("""
int helper0(int a)
{
    MPI_Barrier();
    return a;
}

void main()
{
    MPI_Init_thread(3);
    int x = 0;
    for (int i = 0; i < 2; i += 1)
    {
        return;
        x = helper0(x);
    }
    MPI_Finalize();
}
""")
    assert verdict.classification != CRASH


def test_bigint_division_does_not_crash_interpreter():
    """Fuzz seed 51: `/` and `%` on ints past 1e308 detoured through float
    arithmetic and raised OverflowError."""
    verdict = run_oracle("""
void main() {
    int x = 4;
    for (int i = 0; i < 12; i += 1) { x *= x - 2; }
    x = x / 2;
    x = x % 3;
    MPI_Barrier();
}
""")
    assert verdict.classification != CRASH
    assert verdict.raw_verdict == "clean"


# ---------------------------------------------------------------------------
# Reducer + shared ddmin
# ---------------------------------------------------------------------------


def test_huge_int_print_does_not_crash_interpreter():
    """Review follow-up to the big-int fix: printing an int past CPython's
    4300-digit str limit must render a magnitude summary, not crash."""
    verdict = run_oracle("""
void main() {
    int x = 4;
    for (int i = 0; i < 14; i += 1) { x *= x - 2; }
    print("t", x);
    MPI_Barrier();
}
""")
    assert verdict.classification != CRASH
    assert verdict.raw_verdict == "clean"


def test_ddmin_import_paths_are_shared():
    from repro.explore.minimize import ddmin as old_path
    from repro.util import ddmin as util_path
    from repro.util.ddmin import ddmin as new_path
    assert old_path is new_path is util_path


def test_reduce_preserves_classification_and_shrinks():
    noisy = """
void main() {
    int r = MPI_Comm_rank();
    int x = 1;
    x = x + 1;
    print("a", x);
    x *= 2;
    print("b", x);
    x = x - 3;
    if (r == 0) { MPI_Barrier(); }
    print("c", x);
    x += 4;
    print("d", x);
}
"""
    target = run_oracle(noisy).classification
    assert target == AGREE  # guarded barrier: warning + deadlock

    def pred(candidate):
        verdict = run_oracle(candidate)
        return verdict.classification == AGREE and verdict.dynamic_failed

    reduced = reduce_source(noisy, pred, budget=120)
    assert pred(reduced)
    assert len(reduced.splitlines()) < len(noisy.splitlines())
    assert "MPI_Barrier" in reduced
    assert "print" not in reduced  # the noise is gone


def test_reduce_handles_irreducible_program():
    minimal = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); }
}
"""

    def pred(candidate):
        verdict = run_oracle(candidate)
        return verdict.classification == AGREE and verdict.dynamic_failed

    reduced = reduce_source(minimal, pred, budget=60)
    assert pred(reduced)


# ---------------------------------------------------------------------------
# Campaign
# ---------------------------------------------------------------------------


def test_campaign_smoke_no_disagreements():
    report = run_fuzz(seeds=12, base_seed=0)
    assert report.completed == 12
    assert report.counts[STATIC_MISS] == 0
    assert report.counts[CRASH] == 0
    assert sum(report.counts.values()) == 12
    assert report.exit_code() == 0
    assert report.ok


def test_campaign_parallel_matches_serial():
    serial = run_fuzz(seeds=8, base_seed=100)
    parallel = run_fuzz(seeds=8, base_seed=100, jobs=2)
    assert serial.counts == parallel.counts
    assert serial.overapprox_seeds == parallel.overapprox_seeds


def test_campaign_budget_stops_early():
    report = run_fuzz(seeds=50, base_seed=0, budget=0.0)
    assert report.budget_hit
    assert 0 < report.completed < 50


def test_campaign_budget_stops_early_with_jobs():
    # The parallel path must honor the budget too (queued chunks are
    # cancelled; only in-flight work finishes).
    report = run_fuzz(seeds=64, base_seed=0, budget=0.0, jobs=2)
    assert report.budget_hit
    assert 0 < report.completed < 64


def test_campaign_exit_codes():
    report = FuzzReport(requested=1, base_seed=0)
    assert report.exit_code() == 0
    report.counts[STATIC_MISS] = 1
    assert report.exit_code() == 1
    report.counts[CRASH] = 1
    assert report.exit_code() == 2  # crash outranks findings


def test_fuzz_one_repro_line():
    outcome = fuzz_one(5)
    assert outcome.repro == "parcoach fuzz --seeds 1 --seed 5"


# ---------------------------------------------------------------------------
# Corpus replay — every checked-in counterexample keeps its verdict
# ---------------------------------------------------------------------------


def _corpus_entries():
    entries = load_corpus(CORPUS_DIR)
    assert entries, "tests/corpus/ must contain checked-in counterexamples"
    return entries


@pytest.mark.parametrize("entry", _corpus_entries(),
                         ids=lambda e: e["name"])
def test_corpus_replays_with_stable_verdict(entry):
    config = OracleConfig.from_dict(entry["oracle_config"])
    recorded = OracleVerdict.from_dict(entry["verdict"])
    verdict = run_oracle(entry["source"], config, name=entry["name"])
    if entry.get("xfail"):
        if verdict.as_dict() != recorded.as_dict():
            pytest.xfail(entry["xfail"])
    assert verdict.classification == recorded.classification
    assert verdict.as_dict() == recorded.as_dict()


def test_corpus_never_contains_unfixed_disagreements():
    """Open static-miss/crash entries must carry an xfail note explaining
    why they are not yet fixed (the ISSUE's triage contract)."""
    for entry in _corpus_entries():
        cls = entry["verdict"]["classification"]
        if cls in (STATIC_MISS, CRASH):
            assert entry.get("xfail"), (
                f"{entry['name']} is an open {cls} without an xfail note")
