"""Pretty-printer tests, including the parse∘pretty round-trip property."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.minilang import ast_nodes as A
from repro.minilang.parser import parse_program
from repro.minilang.pretty import emit_expr, pretty


def roundtrip(src: str) -> None:
    prog1 = parse_program(src)
    emitted = pretty(prog1)
    prog2 = parse_program(emitted)
    assert A.ast_equal(prog1, prog2), f"round-trip mismatch:\n{emitted}"
    # Emission is idempotent once canonical.
    assert pretty(prog2) == emitted


def test_roundtrip_simple_function():
    roundtrip("void main() { int x = 1; x += 2; }")


def test_roundtrip_control_flow():
    roundtrip("""
int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i += 1) {
        if (i % 2 == 0) { acc += i; } else { acc -= 1; }
        while (acc > 100) { acc /= 2; }
    }
    return acc;
}
""")


def test_roundtrip_omp_constructs():
    roundtrip("""
void main() {
    int x = 0;
    #pragma omp parallel num_threads(4) private(x)
    {
        #pragma omp single nowait
        { x = 1; }
        #pragma omp barrier
        #pragma omp master
        { x = 2; }
        #pragma omp critical (c1)
        { x += 1; }
        #pragma omp for
        for (int i = 0; i < 8; i += 1) { x += i; }
        #pragma omp sections
        {
            #pragma omp section
            { x = 3; }
            #pragma omp section
            { x = 4; }
        }
    }
}
""")


def test_roundtrip_mpi_calls():
    roundtrip("""
void main() {
    MPI_Init_thread(2);
    float a = 1.0;
    float b = 0.0;
    MPI_Allreduce(a, b, "sum");
    int v[4];
    MPI_Alltoall(v, v);
    MPI_Finalize();
}
""")


def test_parenthesization_preserves_structure():
    roundtrip("void f() { int x = (1 + 2) * (3 - 4) / (5 % 2); }")


def test_right_operand_parens_for_subtraction():
    # a - (b - c) must keep its parens.
    src = "void f() { int x = 1 - (2 - 3); }"
    prog = parse_program(src)
    emitted = pretty(prog)
    assert "1 - (2 - 3)" in emitted
    roundtrip(src)


def test_unary_inside_binary():
    roundtrip("void f() { int x = -1 + -(2 * 3); bool b = !(true && false); }")


def test_string_escapes_roundtrip():
    roundtrip('void f() { print("a\\nb\\t\\"q\\""); }')


def test_emit_expr_minimal_parens():
    prog = parse_program("void f() { int x = 1 + 2 * 3; }")
    init = prog.funcs[0].body.stmts[0].init
    assert emit_expr(init) == "1 + 2 * 3"


# -- property-based: generated programs round-trip -----------------------------

_ident = st.sampled_from(["x", "y", "z", "acc", "tmp"])


@st.composite
def _exprs(draw, depth=0):
    if depth > 3:
        return draw(st.one_of(
            st.integers(0, 100).map(lambda v: A.IntLit(value=v)),
            _ident.map(lambda n: A.VarRef(name=n)),
        ))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return A.IntLit(value=draw(st.integers(0, 1000)))
    if choice == 1:
        return A.VarRef(name=draw(_ident))
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==", "&&", "||"]))
        return A.BinOp(op=op, left=draw(_exprs(depth + 1)), right=draw(_exprs(depth + 1)))
    if choice == 3:
        return A.UnaryOp(op=draw(st.sampled_from(["-", "!"])), operand=draw(_exprs(depth + 1)))
    return A.Call(name="min", args=[draw(_exprs(depth + 1)), draw(_exprs(depth + 1))])


@st.composite
def _stmts(draw, depth=0):
    if depth > 2:
        return A.Assign(target=A.VarRef(name=draw(_ident)), op="=", value=draw(_exprs()))
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return A.Assign(target=A.VarRef(name=draw(_ident)),
                        op=draw(st.sampled_from(["=", "+=", "-=", "*="])),
                        value=draw(_exprs()))
    if choice == 1:
        return A.If(cond=draw(_exprs()),
                    then_body=A.Block(stmts=draw(st.lists(_stmts(depth + 1), max_size=2))),
                    else_body=draw(st.one_of(
                        st.none(),
                        st.builds(A.Block, stmts=st.lists(_stmts(depth + 1), max_size=2)))))
    if choice == 2:
        return A.While(cond=draw(_exprs()),
                       body=A.Block(stmts=draw(st.lists(_stmts(depth + 1), max_size=2))))
    if choice == 3:
        return A.OmpParallel(body=A.Block(stmts=draw(st.lists(_stmts(depth + 1), max_size=2))))
    if choice == 4:
        return A.OmpSingle(body=A.Block(stmts=draw(st.lists(_stmts(depth + 1), max_size=2))),
                           nowait=draw(st.booleans()))
    return A.ExprStmt(expr=A.Call(name="work", args=[draw(_exprs())]))


@given(st.lists(_stmts(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_roundtrip_generated_programs(stmts):
    prog = A.Program(funcs=[A.FuncDef(ret_type="void", name="main",
                                      body=A.Block(stmts=stmts))])
    emitted = pretty(prog)
    reparsed = parse_program(emitted)
    assert A.ast_equal(prog, reparsed), emitted
    assert pretty(reparsed) == emitted
