"""Tests for the three analysis phases and the driver."""

import pytest

from repro import analyze_program, parse_program
from repro.core import ErrorCode, analyze_sequence
from repro.core.concurrency import words_concurrent
from repro.cfg import build_cfg
from repro.minilang.parser import parse_function
from repro.mpi.thread_levels import ThreadLevel
from repro.parallelism import parse_word


def analysis_of(src, **kw):
    return analyze_program(parse_program(src), **kw)


def codes_of(src, **kw):
    return {d.code for d in analysis_of(src, **kw).diagnostics}


# -- phase 1: monothread ---------------------------------------------------------


def test_collective_in_parallel_flagged():
    codes = codes_of("""
void main() {
    #pragma omp parallel
    { MPI_Barrier(); }
}
""")
    assert ErrorCode.COLLECTIVE_MULTITHREADED in codes


def test_collective_in_single_not_flagged():
    codes = codes_of("""
void main() {
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    assert ErrorCode.COLLECTIVE_MULTITHREADED not in codes


def test_sipw_contains_innermost_parallel():
    an = analysis_of("""
void main() {
    #pragma omp parallel
    { MPI_Barrier(); }
}
""")
    fa = an.function("main")
    assert len(fa.monothread.sipw_uids) == 1
    (uid,) = fa.monothread.sipw_uids
    assert fa.word_info.construct_kinds[uid] == "parallel"


def test_required_levels():
    an = analysis_of("""
void main() {
    MPI_Barrier();
    #pragma omp parallel
    {
        #pragma omp master
        { MPI_Barrier(); }
        #pragma omp barrier
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    fa = an.function("main")
    levels = sorted(fa.monothread.required_levels.values())
    assert levels == [ThreadLevel.SINGLE, ThreadLevel.FUNNELED, ThreadLevel.SERIALIZED]


def test_multithreaded_requires_multiple():
    an = analysis_of("""
void main() {
    #pragma omp parallel
    { MPI_Barrier(); }
}
""")
    fa = an.function("main")
    assert fa.monothread.max_required_level is ThreadLevel.MULTIPLE


def test_thread_level_warning_against_requested():
    codes = codes_of("""
void main() {
    MPI_Init_thread(1);
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    assert ErrorCode.THREAD_LEVEL in codes


def test_thread_level_ok_when_sufficient():
    codes = codes_of("""
void main() {
    MPI_Init_thread(2);
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
    }
}
""")
    assert ErrorCode.THREAD_LEVEL not in codes


# -- phase 2: concurrency -----------------------------------------------------------


def test_words_concurrent_criterion():
    w = words_concurrent
    assert w(parse_word("P1 S2"), parse_word("P1 S3"))
    assert not w(parse_word("P1 S2"), parse_word("P1 S2"))          # same region
    assert not w(parse_word("P1 S2"), parse_word("P1 B S3"))        # barrier between
    assert not w(parse_word("P1 S2"), parse_word("P1 S2 P4 S5"))    # prefix: sequential
    assert not w(parse_word("P1 S2"), parse_word("P9 S3"))          # different parallels? prefix ε, P vs P — not S
    assert w(parse_word("P1 S2 B"), parse_word("P1 S3 B"))          # equal barrier counts


def test_concurrent_singles_nowait_flagged():
    an = analysis_of("""
void main() {
    float a = 1.0; float b = 0.0; int x = 1;
    #pragma omp parallel
    {
        #pragma omp single nowait
        { MPI_Reduce(a, b, "sum", 0); }
        #pragma omp single
        { MPI_Bcast(x, 0); }
    }
}
""")
    assert ErrorCode.COLLECTIVE_CONCURRENT in {d.code for d in an.diagnostics}
    fa = an.function("main")
    assert len(fa.concurrency.concurrent_pairs) == 1
    assert len(fa.concurrency.scc_uids) == 2
    # both sites share one check group
    groups = {g for gs in fa.check_groups.values() for g in gs}
    assert len(groups) == 1
    assert an.group_kinds[next(iter(groups))] == "concurrent"


def test_singles_with_barrier_not_concurrent():
    codes = codes_of("""
void main() {
    float a = 1.0; float b = 0.0; int x = 1;
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Reduce(a, b, "sum", 0); }
        #pragma omp single
        { MPI_Bcast(x, 0); }
    }
}
""")
    assert ErrorCode.COLLECTIVE_CONCURRENT not in codes


def test_sections_concurrent():
    codes = codes_of("""
void main() {
    float a = 1.0; float b = 0.0;
    #pragma omp parallel
    {
        #pragma omp sections
        {
            #pragma omp section
            { MPI_Barrier(); }
            #pragma omp section
            { MPI_Allreduce(a, b, "sum"); }
        }
    }
}
""")
    assert ErrorCode.COLLECTIVE_CONCURRENT in codes


def test_same_single_not_self_concurrent():
    codes = codes_of("""
void main() {
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); MPI_Barrier(); }
    }
}
""")
    assert ErrorCode.COLLECTIVE_CONCURRENT not in codes


# -- phase 3: sequence (Algorithm 1) --------------------------------------------------


def test_guarded_collective_warns_with_lines():
    an = analysis_of("""
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) {
        MPI_Barrier();
    }
}
""")
    diags = [d for d in an.diagnostics if d.code is ErrorCode.COLLECTIVE_MISMATCH]
    assert len(diags) == 1
    d = diags[0]
    assert d.collectives[0].name == "MPI_Barrier"
    assert d.collectives[0].line == 5
    assert 4 in d.conditionals


def test_unconditional_sequence_verified():
    an = analysis_of("""
void main() {
    MPI_Barrier();
    float a = 1.0; float b = 0.0;
    MPI_Allreduce(a, b, "sum");
    MPI_Barrier();
}
""")
    assert an.verified
    assert an.instrumented_functions == []


def test_balanced_if_paper_vs_counting_precision():
    src = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); } else { MPI_Barrier(); }
}
"""
    paper = codes_of(src, precision="paper")
    counting = codes_of(src, precision="counting")
    assert ErrorCode.COLLECTIVE_MISMATCH in paper
    assert ErrorCode.COLLECTIVE_MISMATCH not in counting


def test_counting_still_flags_unbalanced():
    src = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); MPI_Barrier(); } else { MPI_Barrier(); }
}
"""
    assert ErrorCode.COLLECTIVE_MISMATCH in codes_of(src, precision="counting")


def test_counting_does_not_suppress_loops():
    src = """
void main() {
    int n = MPI_Comm_rank() + 2;
    for (int i = 0; i < n; i += 1) { MPI_Barrier(); }
}
"""
    assert ErrorCode.COLLECTIVE_MISMATCH in codes_of(src, precision="counting")


def test_sequence_analysis_rejects_bad_precision():
    func = parse_function("void f() { MPI_Barrier(); }")
    cfg, _ = build_cfg(func, set())
    with pytest.raises(ValueError):
        analyze_sequence("f", cfg, precision="wrong")


def test_call_to_collective_function_is_a_point():
    an = analysis_of("""
void sync_all() { MPI_Barrier(); }
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { sync_all(); }
}
""")
    assert "sync_all" in an.collective_funcs
    diags = an.diagnostics.by_code(ErrorCode.COLLECTIVE_MISMATCH)
    assert any("call:sync_all" in str(d.collectives) for d in diags)


# -- driver / instrumentation plan ------------------------------------------------------


def test_selective_instrumentation_plan():
    an = analysis_of("""
void clean() { MPI_Barrier(); }
void main() {
    int r = MPI_Comm_rank();
    clean();
    if (r == 0) { MPI_Barrier(); }
}
""")
    assert "main" in an.instrumented_functions
    # clean is reachable from flagged main and contains collectives:
    assert "clean" in an.instrumented_functions


def test_unreachable_collective_function_not_instrumented():
    an = analysis_of("""
void isolated() { MPI_Barrier(); }
void main() {
    MPI_Barrier();
}
""")
    assert an.instrumented_functions == []


def test_instrument_all_ablation():
    an = analysis_of("""
void main() { MPI_Barrier(); }
""", instrument_all=True)
    assert an.instrumented_functions == ["main"]


def test_verified_program_zero_groups():
    an = analysis_of("void main() { MPI_Barrier(); }")
    assert an.verified
    assert an.group_kinds == {}


def test_initial_word_option_flags_collectives():
    src = "void lib() { MPI_Barrier(); }"
    an = analyze_program(parse_program(src),
                         initial_words={"lib": parse_word("P1")})
    assert ErrorCode.COLLECTIVE_MULTITHREADED in {d.code for d in an.diagnostics}
