"""Dominator/post-dominator and PDF+ tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import CFG, BlockKind, build_cfg, dominators, pdf_plus, post_dominators
from repro.minilang.parser import parse_function


def diamond() -> CFG:
    """entry -> cond -> {a, b} -> join -> exit"""
    cfg = CFG("diamond")
    entry = cfg.new_block(BlockKind.ENTRY)
    cond = cfg.new_block(BlockKind.CONDITION)
    a = cfg.new_block(BlockKind.NORMAL)
    b = cfg.new_block(BlockKind.NORMAL)
    join = cfg.new_block(BlockKind.NORMAL)
    exit_ = cfg.new_block(BlockKind.EXIT)
    cfg.entry_id, cfg.exit_id = entry.id, exit_.id
    for s, d in [(entry.id, cond.id), (cond.id, a.id), (cond.id, b.id),
                 (a.id, join.id), (b.id, join.id), (join.id, exit_.id)]:
        cfg.add_edge(s, d)
    return cfg


def test_diamond_dominators():
    cfg = diamond()
    dom = dominators(cfg)
    # entry dominates everything; cond dominates a, b, join.
    for bid in cfg.blocks:
        assert dom.dominates(cfg.entry_id, bid)
    assert dom.idom[4] == 1  # join's idom is the condition
    assert dom.idom[2] == 1 and dom.idom[3] == 1


def test_diamond_postdominators():
    cfg = diamond()
    pdom = post_dominators(cfg)
    # join post-dominates cond, a, b.
    assert pdom.dominates(4, 1)
    assert pdom.dominates(4, 2)
    assert not pdom.dominates(2, 1)  # a does not post-dominate cond


def test_dominance_frontier_of_branches_is_join():
    cfg = diamond()
    pdf = post_dominators(cfg).dominance_frontier()
    # In the reverse graph, the frontier of a and b is the condition node.
    assert 1 in pdf[2]
    assert 1 in pdf[3]


def test_pdf_plus_flags_guarding_conditional():
    func = parse_function("""
void f(int r) {
    if (r == 0) {
        MPI_Barrier();
    }
}
""")
    cfg, _ = build_cfg(func, set())
    (coll,) = cfg.collective_blocks()
    result = pdf_plus(cfg, [coll.id])
    (cond,) = cfg.blocks_of_kind(BlockKind.CONDITION)
    assert result == {cond.id}


def test_pdf_plus_empty_for_unconditional_collective():
    func = parse_function("""
void f(int r) {
    if (r == 0) { r = 1; }
    MPI_Barrier();
}
""")
    cfg, _ = build_cfg(func, set())
    (coll,) = cfg.collective_blocks()
    assert pdf_plus(cfg, [coll.id]) == set()


def test_pdf_plus_loop_header_flagged():
    func = parse_function("""
void f(int n) {
    for (int i = 0; i < n; i += 1) {
        MPI_Barrier();
    }
}
""")
    cfg, _ = build_cfg(func, set())
    (coll,) = cfg.collective_blocks()
    result = pdf_plus(cfg, [coll.id])
    assert result  # the loop guard is a divergence point


def test_dominates_is_reflexive_and_rooted():
    cfg = diamond()
    dom = dominators(cfg)
    for bid in cfg.blocks:
        assert dom.dominates(bid, bid)
    assert dom.idom[cfg.entry_id] == cfg.entry_id


def test_dom_tree_children_partition():
    cfg = diamond()
    dom = dominators(cfg)
    kids = dom.children()
    all_children = [c for lst in kids.values() for c in lst]
    assert sorted(all_children) == sorted(n for n in dom.idom if n != cfg.entry_id)


def test_caching_returns_same_tree():
    cfg = diamond()
    assert dominators(cfg) is dominators(cfg)
    assert post_dominators(cfg) is post_dominators(cfg)


# -- randomized cross-check against networkx ---------------------------------------


@st.composite
def random_cfg(draw):
    n = draw(st.integers(4, 14))
    cfg = CFG("rand")
    blocks = [cfg.new_block(BlockKind.NORMAL) for _ in range(n)]
    cfg.entry_id = blocks[0].id
    cfg.exit_id = blocks[-1].id
    blocks[-1].kind = BlockKind.EXIT
    blocks[0].kind = BlockKind.ENTRY
    # Spine guarantees connectivity entry -> ... -> exit.
    for i in range(n - 1):
        cfg.add_edge(blocks[i].id, blocks[i + 1].id)
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 2), st.integers(1, n - 1)),
        max_size=2 * n,
    ))
    for s, d in extra:
        if s != d and blocks[s].id != cfg.exit_id:
            cfg.add_edge(blocks[s].id, blocks[d].id)
    cfg.ensure_exit_reachable()
    return cfg


@given(random_cfg())
@settings(max_examples=60, deadline=None)
def test_idom_matches_networkx(cfg):
    graph = nx.DiGraph(cfg.edge_list())
    graph.add_nodes_from(cfg.blocks)
    expected = nx.immediate_dominators(graph, cfg.entry_id)
    dom = dominators(cfg)
    reachable = cfg.reachable_from_entry()
    for node in reachable:
        # networkx >= 3.6 omits the root from its result.
        assert dom.idom[node] == expected.get(node, node)


@given(random_cfg())
@settings(max_examples=60, deadline=None)
def test_postdom_matches_networkx_on_reverse(cfg):
    graph = nx.DiGraph((d, s) for s, d in cfg.edge_list())
    graph.add_nodes_from(cfg.blocks)
    expected = nx.immediate_dominators(graph, cfg.exit_id)
    pdom = post_dominators(cfg)
    for node in cfg.can_reach_exit():
        assert pdom.idom[node] == expected.get(node, node)


@given(random_cfg())
@settings(max_examples=40, deadline=None)
def test_frontier_matches_networkx(cfg):
    graph = nx.DiGraph(cfg.edge_list())
    graph.add_nodes_from(cfg.blocks)
    expected = nx.dominance_frontiers(graph, cfg.entry_id)
    ours = dominators(cfg).dominance_frontier()
    for node in cfg.reachable_from_entry():
        assert ours.get(node, set()) == expected[node]


# -- O(1) interval queries vs. the chain-walk oracle --------------------------------


@given(random_cfg())
@settings(max_examples=60, deadline=None)
def test_interval_dominates_matches_chain_oracle(cfg):
    """Property: the interval-numbered fast path agrees with the O(depth)
    parent-chain walk on every node pair, in both directions."""
    for tree in (dominators(cfg), post_dominators(cfg)):
        nodes = list(cfg.blocks)
        for a in nodes:
            for b in nodes:
                assert tree.dominates(a, b) == tree.dominates_via_chain(a, b), \
                    (tree.post, a, b)


def _parsed_cfg(src):
    func = parse_function(src)
    cfg, _ = build_cfg(func, set())
    return cfg


def test_interval_matches_chain_on_nested_loops():
    cfg = _parsed_cfg("""
void f(int n) {
    for (int i = 0; i < n; i += 1) {
        for (int j = 0; j < n; j += 1) {
            if (j == 1) {
                MPI_Barrier();
            }
            while (j < 3) {
                j += 1;
            }
        }
    }
}
""")
    for tree in (dominators(cfg), post_dominators(cfg)):
        for a in cfg.blocks:
            for b in cfg.blocks:
                assert tree.dominates(a, b) == tree.dominates_via_chain(a, b)


def test_interval_handles_unreachable_blocks():
    """Unreachable nodes dominate only themselves — same in both paths."""
    cfg = CFG("unreach")
    entry = cfg.new_block(BlockKind.ENTRY)
    mid = cfg.new_block(BlockKind.NORMAL)
    orphan = cfg.new_block(BlockKind.NORMAL)  # no incoming edges
    exit_ = cfg.new_block(BlockKind.EXIT)
    cfg.entry_id, cfg.exit_id = entry.id, exit_.id
    cfg.add_edge(entry.id, mid.id)
    cfg.add_edge(mid.id, exit_.id)
    cfg.add_edge(orphan.id, exit_.id)  # reaches exit, unreachable from entry
    dom = dominators(cfg)
    assert dom.dominates(orphan.id, orphan.id)
    assert not dom.dominates(entry.id, orphan.id)
    assert not dom.dominates(orphan.id, exit_.id)
    for a in cfg.blocks:
        for b in cfg.blocks:
            assert dom.dominates(a, b) == dom.dominates_via_chain(a, b)


def test_interval_handles_virtual_exit_edges():
    """Infinite loop: ensure_exit_reachable adds a virtual edge, and the
    post-dominator fast path stays consistent with the oracle."""
    cfg = CFG("inf")
    entry = cfg.new_block(BlockKind.ENTRY)
    head = cfg.new_block(BlockKind.NORMAL)
    body = cfg.new_block(BlockKind.NORMAL)
    exit_ = cfg.new_block(BlockKind.EXIT)
    cfg.entry_id, cfg.exit_id = entry.id, exit_.id
    cfg.add_edge(entry.id, head.id)
    cfg.add_edge(head.id, body.id)
    cfg.add_edge(body.id, head.id)  # no path to exit
    added = cfg.ensure_exit_reachable()
    # Deterministic smallest-id-first selection: entry first (it is stuck
    # too — its only path leads into the loop), then the loop header.
    assert added == 2
    assert cfg.virtual_edges == {(entry.id, exit_.id), (head.id, exit_.id)}
    pdom = post_dominators(cfg)
    for a in cfg.blocks:
        for b in cfg.blocks:
            assert pdom.dominates(a, b) == pdom.dominates_via_chain(a, b)


@st.composite
def random_partial_cfg_builder(draw):
    """A builder for CFGs where the exit may be unreachable from many nodes
    (the spine deliberately stops one short of the exit)."""
    n = draw(st.integers(4, 12))
    extra = draw(st.lists(
        st.tuples(st.integers(0, n - 2), st.integers(1, n - 1)),
        max_size=3 * n,
    ))

    def build() -> CFG:
        cfg = CFG("partial")
        blocks = [cfg.new_block(BlockKind.NORMAL) for _ in range(n)]
        cfg.entry_id, cfg.exit_id = blocks[0].id, blocks[-1].id
        blocks[0].kind = BlockKind.ENTRY
        blocks[-1].kind = BlockKind.EXIT
        for i in range(n - 2):
            cfg.add_edge(blocks[i].id, blocks[i + 1].id)
        for s, d in extra:
            if s != d:
                cfg.add_edge(blocks[s].id, blocks[d].id)
        return cfg

    return build


def _ensure_exit_reachable_oracle(cfg: CFG) -> int:
    """The seed's recompute-from-scratch loop, kept as the equivalence
    oracle for the linear ensure_exit_reachable."""
    added = 0
    while True:
        can_reach = cfg.can_reach_exit()
        stuck = [bid for bid in cfg.blocks if bid not in can_reach]
        if not stuck:
            return added
        reachable = cfg.reachable_from_entry()
        candidates = [b for b in stuck if b in reachable] or stuck
        cfg.add_edge(min(candidates), cfg.exit_id, virtual=True)
        added += 1


@given(random_partial_cfg_builder())
@settings(max_examples=80, deadline=None)
def test_ensure_exit_reachable_matches_quadratic_oracle(build):
    fast, slow = build(), build()  # identical graphs, identical block ids
    assert fast.ensure_exit_reachable() == _ensure_exit_reachable_oracle(slow)
    assert fast.virtual_edges == slow.virtual_edges
    assert set(fast.blocks) == fast.can_reach_exit()


def test_frozen_cfg_returns_tuple_views():
    func = parse_function("void f() { MPI_Barrier(); }")
    cfg, _ = build_cfg(func, set())
    assert cfg.frozen
    succs = cfg.successors(cfg.entry_id)
    assert isinstance(succs, tuple)
    assert cfg.successors(cfg.entry_id) is succs  # zero-copy: same object
    with pytest.raises(RuntimeError):
        cfg.add_edge(cfg.entry_id, cfg.exit_id)
    with pytest.raises(RuntimeError):
        cfg.new_block(BlockKind.NORMAL)
