"""Unified Report IR: schema shape, finding-fingerprint stability,
byte-identity across re-parses, and the CLI ``--json`` surfaces."""

import json

import pytest

from repro.bench.errors_gallery import CASES
from repro.cli import main
from repro.core import analyze_program
from repro.core.report import (
    REPORT_SCHEMA,
    REPORT_VERSION,
    canonical_region_ids,
    finding_fingerprint,
    render_json,
    report_from_analysis,
    validate_report,
)
from repro.minilang.parser import parse_program


MISMATCH = CASES["rank_dependent_bcast"].source
PARALLEL = CASES["interproc_helper_in_parallel"].source


def _report(src: str, name: str = "p.mc") -> dict:
    analysis = analyze_program(parse_program(src, name))
    return report_from_analysis(analysis, source_path=name, source_text=src)


# -- canonicalization ---------------------------------------------------------------


def test_canonical_region_ids_first_occurrence_order():
    assert canonical_region_ids("P17 B S42") == "P1 B S2"
    assert canonical_region_ids("words P93 / P93") == "words P1 / P1"
    assert canonical_region_ids("P-1 S-2") == "P1 S2"
    assert canonical_region_ids("no ids here") == "no ids here"


def test_report_byte_identical_across_reparses_in_one_process():
    """Two parses in the same process assign different uids; the IR must
    not leak them (region ids are the one place they could surface)."""
    first = render_json(_report(PARALLEL))
    second = render_json(_report(PARALLEL))
    assert first == second
    # ... and the report really does carry context words.
    doc = json.loads(first)
    assert any("P1" in c for fn in doc["summary"]["functions"].values()
               for c in fn["contexts"])


def test_finding_fingerprints_stable_across_reparses():
    fps1 = [f["fingerprint"] for f in _report(MISMATCH)["findings"]]
    fps2 = [f["fingerprint"] for f in _report(MISMATCH)["findings"]]
    assert fps1 and fps1 == fps2


def test_finding_fingerprint_tracks_content():
    report = _report(MISMATCH)
    moved = _report("\n" + MISMATCH)  # every line shifts by one
    assert [f["fingerprint"] for f in report["findings"]] != \
        [f["fingerprint"] for f in moved["findings"]]


def test_fingerprint_ignores_field_order():
    payload = {"kind": "static-diagnostic", "code": "x", "b": 1, "a": 2}
    reordered = {"a": 2, "b": 1, "code": "x", "kind": "static-diagnostic"}
    assert finding_fingerprint(payload) == finding_fingerprint(reordered)


# -- schema validation --------------------------------------------------------------


def test_analyze_report_validates():
    report = _report(MISMATCH)
    assert report["schema"] == REPORT_SCHEMA
    assert report["version"] == REPORT_VERSION
    assert report["verdict"] == "findings"
    assert validate_report(report) == []


def test_clean_report_validates():
    report = _report(CASES["clean_masteronly"].source)
    assert report["verdict"] == "clean"
    assert report["findings"] == []
    assert validate_report(report) == []


def test_validator_rejects_tampering():
    report = _report(MISMATCH)
    good = json.loads(render_json(report))
    bad_version = dict(good, version=99)
    assert any("version" in p for p in validate_report(bad_version))
    bad_verdict = dict(good, verdict="clean")
    assert any("clean" in p for p in validate_report(bad_verdict))
    tampered = json.loads(render_json(report))
    tampered["findings"][0]["message"] = "edited after the fact"
    assert any("does not recompute" in p for p in validate_report(tampered))
    missing = json.loads(render_json(report))
    del missing["findings"][0]["function"]
    assert any("missing fields" in p for p in validate_report(missing))


def test_validator_rejects_non_reports():
    assert validate_report([]) == ["report is not a JSON object"]
    assert any("schema" in p for p in validate_report({}))


# -- CLI --json ---------------------------------------------------------------------


def _run_json(capsys, *argv) -> tuple:
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, json.loads(out)


def test_cli_analyze_json(tmp_path, capsys):
    path = tmp_path / "p.mc"
    path.write_text(MISMATCH)
    code, doc = _run_json(capsys, "analyze", str(path), "--json")
    assert code == 1  # exit contract unchanged by --json
    assert doc["tool"] == "analyze"
    assert validate_report(doc) == []
    assert doc["source"]["file"] == str(path)
    assert len(doc["source"]["sha256"]) == 64


def test_cli_callgraph_json(tmp_path, capsys):
    path = tmp_path / "p.mc"
    path.write_text(PARALLEL)
    code, doc = _run_json(capsys, "callgraph", str(path), "--json")
    assert code == 0
    assert validate_report(doc) == []
    assert doc["summary"]["functions"]["bump"]["collectives"] == {
        "MPI_Barrier": "always"}
    assert doc["summary"]["functions"]["bump"]["contexts"] == ["P1"]


def test_cli_explore_json(tmp_path, capsys):
    path = tmp_path / "p.mc"
    path.write_text(MISMATCH)
    code, doc = _run_json(capsys, "explore", str(path), "--runs", "4",
                          "--json")
    assert code == 1
    assert validate_report(doc) == []
    assert doc["summary"]["failed"] > 0
    assert doc["findings"][0]["kind"] == "schedule-failure"


def test_cli_fuzz_json(capsys):
    code, doc = _run_json(capsys, "fuzz", "--seeds", "2", "--seed", "0",
                          "--json")
    assert code == 0
    assert validate_report(doc) == []
    assert doc["summary"]["seeds"] == 2
    assert sum(doc["summary"]["counts"].values()) == 2


def test_cli_json_byte_identical_across_invocations(tmp_path, capsys):
    path = tmp_path / "p.mc"
    path.write_text(PARALLEL)
    main(["analyze", str(path), "--json"])
    first = capsys.readouterr().out
    main(["analyze", str(path), "--json"])
    second = capsys.readouterr().out
    assert first == second


def test_cli_validate_report_subcommand(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(render_json(_report(MISMATCH)))
    assert main(["validate-report", str(good)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.json"
    doc = _report(MISMATCH)
    doc["findings"][0]["message"] = "tampered"
    bad.write_text(render_json(doc))
    assert main(["validate-report", str(bad)]) == 2


def test_human_output_unchanged_by_json_flag_existence(tmp_path, capsys):
    """The plain-text report must be exactly what it always was."""
    path = tmp_path / "p.mc"
    path.write_text(MISMATCH)
    from repro.core import render_report

    main(["analyze", str(path)])
    out = capsys.readouterr().out
    expected = render_report(analyze_program(parse_program(MISMATCH,
                                                           str(path))))
    assert out == expected
