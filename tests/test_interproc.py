"""End-to-end tests for interprocedural context propagation.

Covers the acceptance criteria of the interprocedural layer:

* the gallery seeds are flagged *only* with the layer on (the
  intraprocedural mode provably reports nothing) and the dynamic verdict
  (raw run, instrumented run, schedule exploration) agrees;
* ``parcoach analyze``/``instrument`` output stays byte-identical on every
  pre-existing bench + gallery program with the layer on — with one audited
  exception: HERA gains exactly one *true* warning for the previously
  invisible expression call ``dt = compute_dt(0, n)`` inside the timestep
  loop (a statement call at the same spot already warns today);
* ``--initial-context`` seeds the entry functions and propagates through
  the CLI; diagnostics carry witness call chains;
* the engine caches per ``(function, context word)`` with no stale hits and
  full hit-rate when contexts repeat, and the ``jobs>1`` pool persists
  across ``analyze()`` calls.
"""

import difflib

import pytest

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench import (
    CASES,
    benchmark_sources,
    interprocedural_cases,
    scale_suite,
)
from repro.cli import main
from repro.core import AnalysisEngine, render_report
from repro.core.diagnostics import ErrorCode
from repro.minilang.pretty import pretty
from repro.parallelism import format_word

INTERPROC = sorted(interprocedural_cases())


# -- the seeds: intraprocedural miss, interprocedural hit ---------------------------


@pytest.mark.parametrize("name", INTERPROC)
def test_intraprocedural_mode_provably_misses(name):
    case = CASES[name]
    program = parse_program(case.source, name)
    analysis = analyze_program(program, interprocedural=False)
    assert len(analysis.diagnostics) == 0, (
        f"{name}: intraprocedural mode was supposed to be blind, got "
        f"{[d.render() for d in analysis.diagnostics]}"
    )
    assert not analysis.instrumented_functions


@pytest.mark.parametrize("name", INTERPROC)
def test_interprocedural_mode_flags(name):
    case = CASES[name]
    program = parse_program(case.source, name)
    analysis = analyze_program(program)  # interprocedural by default
    codes = {d.code for d in analysis.diagnostics}
    assert case.expect_static <= codes
    assert analysis.interprocedural
    assert analysis.instrumented_functions


def test_call_path_attached_for_context_diagnostics():
    case = CASES["interproc_helper_in_parallel"]
    analysis = analyze_program(parse_program(case.source, case.name))
    diag = analysis.diagnostics.by_code(ErrorCode.COLLECTIVE_MULTITHREADED)[0]
    assert diag.call_path == ("main", "bump")
    assert "call path: main → bump" in diag.render()
    # The context word is canonical (negative region id, reparse-stable).
    assert "P-1" in diag.context


def test_recursive_seed_contexts_and_chain():
    case = CASES["interproc_recursive_barrier"]
    analysis = analyze_program(parse_program(case.source, case.name))
    fa = analysis.function("spin")
    assert tuple(format_word(w) for w in fa.context_words) == ("P-1",)
    diag = analysis.diagnostics.by_code(ErrorCode.COLLECTIVE_MULTITHREADED)[0]
    assert diag.call_path == ("main", "spin")
    assert analysis.callgraph is not None
    assert "spin" in analysis.callgraph.recursive


def test_expression_call_point_names_the_helper():
    case = CASES["interproc_conditional_collective_helper"]
    analysis = analyze_program(parse_program(case.source, case.name))
    diag = analysis.diagnostics.by_code(ErrorCode.COLLECTIVE_MISMATCH)[0]
    assert diag.function == "main"
    assert any(ref.name == "call:sync_step" for ref in diag.collectives)
    assert diag.conditionals  # the rank guard


# -- dynamic agreement --------------------------------------------------------------


def _run_case(case, instrument):
    program = parse_program(case.source, case.name)
    analysis = analyze_program(program)
    group_kinds = None
    if instrument:
        program, _ = instrument_program(analysis)
        group_kinds = analysis.group_kinds
    return run_program(program, nprocs=case.nprocs,
                       num_threads=case.num_threads,
                       group_kinds=group_kinds, timeout=6.0)


@pytest.mark.parametrize("name", INTERPROC)
def test_dynamic_verdict_agrees_instrumented(name):
    case = CASES[name]
    attempts = 1 if case.deterministic else 4
    for _ in range(attempts):
        result = _run_case(case, instrument=True)
        if result.error is not None:
            assert isinstance(result.error, case.runtime_errors), result.error
            return
    pytest.fail(f"{name}: no instrumented run failed in {attempts} attempts")


@pytest.mark.parametrize("name", INTERPROC)
def test_dynamic_verdict_agrees_raw(name):
    case = CASES[name]
    attempts = 1 if case.deterministic else 4
    for _ in range(attempts):
        result = _run_case(case, instrument=False)
        if result.error is not None:
            assert isinstance(result.error, case.raw_errors), result.error
            return
    pytest.fail(f"{name}: no raw run failed in {attempts} attempts")


def test_explore_verdict_agrees_on_conditional_helper():
    """Schedule exploration reaches the same verdict: every interleaving of
    the rank-guarded seed fails (the mismatch is schedule-independent)."""
    from repro.explore import ExploreConfig, explore_config
    from repro.mpi.thread_levels import ThreadLevel

    case = CASES["interproc_conditional_collective_helper"]
    program = parse_program(case.source, case.name)
    config = ExploreConfig(nprocs=2, num_threads=1,
                           thread_level=ThreadLevel.MULTIPLE)
    report = explore_config(program, config, strategy="dfs", runs=10,
                            preemptions=0, minimize=False)
    assert report.schedules >= 1
    assert report.failed == report.schedules


# -- corpus stability ---------------------------------------------------------------


def _legacy_corpus():
    sources = dict(benchmark_sources())
    sources.update({f"scale:{k}": v for k, v in scale_suite().items()})
    sources.update({f"gallery:{n}": c.source for n, c in CASES.items()
                    if not c.interprocedural})
    return sources


def test_corpus_output_stability():
    """Interprocedural mode on vs off across every pre-existing bench and
    gallery program: instrument output byte-identical everywhere; analyze
    output byte-identical everywhere except HERA, which gains exactly one
    true collective-mismatch warning for the expression call to
    ``compute_dt`` inside the timestep loop."""
    for name, src in sorted(_legacy_corpus().items()):
        program = parse_program(src, name)
        on = analyze_program(program, interprocedural=True)
        off = analyze_program(program, interprocedural=False)
        inst_on = pretty(instrument_program(on)[0])
        inst_off = pretty(instrument_program(off)[0])
        assert inst_on == inst_off, f"{name}: instrument output drifted"
        report_on = render_report(on, verbose=True)
        report_off = render_report(off, verbose=True)
        if name == "HERA":
            added = [line[1:] for line in difflib.ndiff(
                report_off.splitlines(), report_on.splitlines())
                if line.startswith("+ ")]
            assert any("call:compute_dt" in line for line in added)
            new = [d for d in on.diagnostics
                   if any(r.name == "call:compute_dt" for r in d.collectives)]
            assert len(new) == 1
            assert len(on.diagnostics) == len(off.diagnostics) + 1
            continue
        assert report_on == report_off, (
            f"{name}: analyze output drifted\n" + "\n".join(
                difflib.unified_diff(report_off.splitlines(),
                                     report_on.splitlines(), lineterm="")))


# -- CLI ----------------------------------------------------------------------------


MULTI_FUNC = """
void helper() {
    MPI_Barrier();
}

void main() {
    helper();
}
"""


def test_cli_initial_context_propagates(tmp_path, capsys):
    path = tmp_path / "multi.mc"
    path.write_text(MULTI_FUNC)
    # Clean in the monothreaded default...
    assert main(["analyze", str(path)]) == 0
    capsys.readouterr()
    # ...but the entry seed propagates to the helper and flags its barrier.
    assert main(["analyze", str(path), "--initial-context", "P1"]) == 1
    out = capsys.readouterr().out
    assert "collective-multithreaded" in out
    assert "helper" in out
    assert "call path: main → helper" in out


def test_cli_initial_context_intraprocedural_applies_everywhere(tmp_path, capsys):
    path = tmp_path / "multi.mc"
    path.write_text(MULTI_FUNC)
    rc = main(["analyze", str(path), "--initial-context", "P1",
               "--no-interprocedural"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "collective-multithreaded" in out
    assert "call path" not in out  # chains are an interprocedural feature


def test_cli_no_interprocedural_misses_seed(tmp_path, capsys):
    case = CASES["interproc_helper_in_parallel"]
    path = tmp_path / "seed.mc"
    path.write_text(case.source)
    assert main(["analyze", str(path)]) == 1
    capsys.readouterr()
    assert main(["analyze", str(path), "--no-interprocedural"]) == 0


def test_cli_callgraph_text(tmp_path, capsys):
    case = CASES["interproc_recursive_barrier"]
    path = tmp_path / "seed.mc"
    path.write_text(case.source)
    assert main(["callgraph", str(path)]) == 0
    out = capsys.readouterr().out
    assert "call graph of" in out
    assert "spin [recursive]" in out
    assert "contexts: P-1" in out
    assert "MPI_Barrier [always]" in out
    assert "calls spin" in out and "expr" in out


def test_cli_callgraph_dot(tmp_path, capsys):
    case = CASES["interproc_helper_in_parallel"]
    path = tmp_path / "seed.mc"
    path.write_text(case.source)
    out_path = tmp_path / "graph.dot"
    assert main(["callgraph", str(path), "--dot", "-o", str(out_path)]) == 0
    dot = out_path.read_text()
    assert dot.startswith("digraph")
    assert '"main" -> "bump" [style=dashed];' in dot


def test_cli_batch_interproc_flag(tmp_path, capsys):
    case = CASES["interproc_helper_in_parallel"]
    path = tmp_path / "seed.mc"
    path.write_text(case.source)
    assert main(["batch", str(path)]) == 1
    capsys.readouterr()
    assert main(["batch", str(path), "--no-interprocedural"]) == 0


# -- engine cache behaviour ---------------------------------------------------------


MULTI_CONTEXT = """
void helper() {
    MPI_Barrier();
}

void main() {
    helper();
    #pragma omp parallel
    {
        #pragma omp single
        {
            helper();
        }
    }
}
"""


def _diag_tuples(analysis):
    return [(d.code, d.function, d.message, d.collectives, d.conditionals,
             d.context, d.call_path) for d in analysis.diagnostics]


def test_engine_caches_per_context_word():
    program = parse_program(MULTI_CONTEXT, "m.mc")
    engine = AnalysisEngine()
    first = engine.analyze(program)
    # helper analyzed under two contexts (ε and P-1 S-2) + main under ε.
    assert engine.stats.misses == 3
    fa = first.function("helper")
    assert tuple(format_word(w) for w in fa.context_words) == ("ε", "P-1 S-2")
    second = engine.analyze(program)
    assert engine.stats.hits == 3  # contexts repeat: full hit-rate
    assert engine.stats.misses == 3
    assert _diag_tuples(first) == _diag_tuples(second)
    assert render_report(first, verbose=True) == render_report(second, verbose=True)


def test_engine_reparse_hits_with_canonical_contexts():
    """Context words are canonical, so a re-parse (new uids) still hits the
    cache by structural remap."""
    p1 = parse_program(MULTI_CONTEXT, "m.mc")
    p2 = parse_program(MULTI_CONTEXT, "m.mc")
    engine = AnalysisEngine()
    a1 = engine.analyze(p1)
    a2 = engine.analyze(p2)
    assert engine.stats.lazy_hits == 3  # deferred — nothing rendered yet
    assert engine.stats.misses == 3
    assert [d.render() for d in a1.diagnostics] == \
        [d.render() for d in a2.diagnostics]
    assert engine.stats.remaps == 3  # materialized by the renders above


def test_engine_no_stale_hits_across_entry_contexts():
    from repro.parallelism import parse_word

    program = parse_program(MULTI_FUNC, "m.mc")
    engine = AnalysisEngine()
    plain = engine.analyze(program)
    seeded = engine.analyze(program, entry_context=parse_word("P1"))
    assert len(plain.diagnostics) == 0
    assert len(seeded.diagnostics) > 0  # no stale empty-context artifacts
    again = engine.analyze(program)
    assert _diag_tuples(again) == _diag_tuples(plain)


def test_engine_matches_oneshot_driver_on_seeds():
    engine = AnalysisEngine()
    for name in INTERPROC:
        program = parse_program(CASES[name].source, name)
        ref = analyze_program(program)
        for _ in range(2):
            got = engine.analyze(program)
            assert _diag_tuples(got) == _diag_tuples(ref), name
            assert render_report(got, verbose=True) == \
                render_report(ref, verbose=True), name
            assert pretty(instrument_program(got)[0]) == \
                pretty(instrument_program(ref)[0]), name


# -- persistent worker pool ---------------------------------------------------------


def test_persistent_pool_reused_across_analyze_calls():
    src = scale_suite()["S"]
    program = parse_program(src, "s.mc")
    engine = AnalysisEngine(jobs=2, cache=False)
    try:
        ref = analyze_program(program)
        first = engine.analyze(program)
        pool = engine._pool
        assert pool is not None
        second = engine.analyze(program)
        assert engine._pool is pool  # same pool, no respawn
        assert engine.stats.parallel_tasks == 2 * len(program.funcs)
        assert _diag_tuples(first) == _diag_tuples(second) == _diag_tuples(ref)
    finally:
        engine.close()
    assert engine._pool is None


def test_pool_close_is_reentrant_and_engine_survives():
    src = scale_suite()["S"]
    program = parse_program(src, "s.mc")
    with AnalysisEngine(jobs=2, cache=False) as engine:
        engine.analyze(program)
        engine.close()
        engine.close()  # no-op
        after = engine.analyze(program)  # pool lazily recreated
        assert after.functions
    assert engine._pool is None
