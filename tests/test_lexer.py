"""Unit tests for the minilang lexer."""

import pytest

from repro.minilang.lexer import tokenize
from repro.minilang.tokens import LexError, TokenType


def types(src):
    return [t.type for t in tokenize(src)][:-1]  # drop EOF


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].type is TokenType.EOF


def test_integer_literal():
    toks = tokenize("42")
    assert toks[0].type is TokenType.INT
    assert toks[0].value == "42"


def test_float_literal():
    toks = tokenize("3.25")
    assert toks[0].type is TokenType.FLOAT
    assert toks[0].value == "3.25"


def test_float_with_exponent():
    toks = tokenize("1e5 2.5e-3")
    assert toks[0].type is TokenType.FLOAT
    assert toks[1].type is TokenType.FLOAT


def test_bare_dot_is_a_lex_error():
    # "7 ." — a dot with no digits is not a token of the language.
    with pytest.raises(LexError):
        tokenize("7 .")
    # But a trailing dot directly after digits stays part of the number scan
    # only when followed by a digit: "7.5" is a float.
    assert tokenize("7.5")[0].type is TokenType.FLOAT


def test_keywords_vs_identifiers():
    assert types("int x if else while for return true false") == [
        TokenType.KW_INT, TokenType.IDENT, TokenType.KW_IF, TokenType.KW_ELSE,
        TokenType.KW_WHILE, TokenType.KW_FOR, TokenType.KW_RETURN,
        TokenType.KW_TRUE, TokenType.KW_FALSE,
    ]


def test_identifier_with_underscore_and_digits():
    toks = tokenize("MPI_Comm_rank x_1")
    assert toks[0].value == "MPI_Comm_rank"
    assert toks[1].value == "x_1"


def test_multi_char_operators_greedy():
    assert types("== != <= >= && || += -= ++ --") == [
        TokenType.EQ, TokenType.NE, TokenType.LE, TokenType.GE,
        TokenType.AND, TokenType.OR, TokenType.PLUSEQ, TokenType.MINUSEQ,
        TokenType.PLUSPLUS, TokenType.MINUSMINUS,
    ]


def test_single_char_operators():
    assert types("+ - * / % < > ! = ; , ( ) { } [ ]") == [
        TokenType.PLUS, TokenType.MINUS, TokenType.STAR, TokenType.SLASH,
        TokenType.PERCENT, TokenType.LT, TokenType.GT, TokenType.NOT,
        TokenType.ASSIGN, TokenType.SEMI, TokenType.COMMA,
        TokenType.LPAREN, TokenType.RPAREN, TokenType.LBRACE, TokenType.RBRACE,
        TokenType.LBRACKET, TokenType.RBRACKET,
    ]


def test_line_comment_skipped():
    assert types("x // comment\ny") == [TokenType.IDENT, TokenType.IDENT]


def test_block_comment_skipped():
    assert types("x /* multi\nline */ y") == [TokenType.IDENT, TokenType.IDENT]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("x /* never closed")


def test_string_literal_with_escapes():
    toks = tokenize(r'"a\nb\t\"c\""')
    assert toks[0].type is TokenType.STRING
    assert toks[0].value == 'a\nb\t"c"'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_newline_in_string_raises():
    with pytest.raises(LexError):
        tokenize('"ab\ncd"')


def test_unknown_character_raises():
    with pytest.raises(LexError) as err:
        tokenize("x @ y")
    assert err.value.line == 1


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_pragma_emits_newline_token():
    toks = tokenize("#pragma omp barrier\nx")
    ttypes = [t.type for t in toks]
    assert TokenType.HASH in ttypes
    assert TokenType.NEWLINE in ttypes
    # Regular newlines (outside pragmas) are not emitted.
    toks2 = tokenize("a\nb")
    assert all(t.type is not TokenType.NEWLINE for t in toks2)


def test_pragma_at_eof_without_newline():
    toks = tokenize("#pragma omp barrier")
    ttypes = [t.type for t in toks]
    assert TokenType.NEWLINE in ttypes
    assert ttypes[-1] is TokenType.EOF


def test_pragma_line_continuation():
    toks = tokenize("#pragma omp parallel \\\n num_threads(2)\n{ }")
    values = [t.value for t in toks if t.type is TokenType.IDENT]
    assert "num_threads" in values
