"""Tests for the supporting modules: registry, thread levels, loops,
diagnostics, reports."""

import pytest

from repro import analyze_program, parse_program
from repro.cfg import build_cfg, loop_nesting_depth, natural_loops
from repro.core import ErrorCode, analysis_summary, render_report
from repro.core.diagnostics import Diagnostic, DiagnosticBag, SourceRef
from repro.minilang.parser import parse_function
from repro.mpi.collectives import (
    COLLECTIVES,
    RETURN_COLOR,
    collective_color,
    color_name,
    is_collective,
    is_mpi_call,
)
from repro.mpi.thread_levels import LEVEL_FROM_INT, ThreadLevel, required_level


# -- collective registry ------------------------------------------------------


def test_colors_unique_and_nonzero():
    colors = [info.color for info in COLLECTIVES.values()]
    assert len(set(colors)) == len(colors)
    assert RETURN_COLOR not in colors


def test_color_name_roundtrip():
    for name in COLLECTIVES:
        assert color_name(collective_color(name)) == name
    assert color_name(RETURN_COLOR) == "<return>"
    assert "unknown" in color_name(9999)


def test_is_collective_vs_is_mpi_call():
    assert is_collective("MPI_Barrier")
    assert not is_collective("MPI_Send")
    assert is_mpi_call("MPI_Send")
    assert is_mpi_call("MPI_Comm_rank")
    assert not is_mpi_call("print")


def test_rooted_collectives_marked():
    assert COLLECTIVES["MPI_Bcast"].has_root
    assert not COLLECTIVES["MPI_Allreduce"].has_root


# -- thread levels --------------------------------------------------------------


def test_thread_level_ordering():
    assert ThreadLevel.SINGLE < ThreadLevel.FUNNELED < ThreadLevel.SERIALIZED \
        < ThreadLevel.MULTIPLE
    assert max(ThreadLevel.SINGLE, ThreadLevel.MULTIPLE) is ThreadLevel.MULTIPLE


def test_level_from_int_total():
    assert LEVEL_FROM_INT[0] is ThreadLevel.SINGLE
    assert LEVEL_FROM_INT[3] is ThreadLevel.MULTIPLE
    assert len(LEVEL_FROM_INT) == 4


@pytest.mark.parametrize("has_p,mono,master,expected", [
    (False, True, False, ThreadLevel.SINGLE),
    (True, True, True, ThreadLevel.FUNNELED),
    (True, True, False, ThreadLevel.SERIALIZED),
    (True, False, False, ThreadLevel.MULTIPLE),
])
def test_required_level_matrix(has_p, mono, master, expected):
    assert required_level(has_p, mono, master) is expected


def test_mpi_name():
    assert ThreadLevel.SERIALIZED.mpi_name == "MPI_THREAD_SERIALIZED"


# -- loops ------------------------------------------------------------------------


def test_natural_loop_detection():
    func = parse_function("""
void f(int n) {
    for (int i = 0; i < n; i += 1) {
        for (int j = 0; j < n; j += 1) { print(i, j); }
    }
}
""")
    cfg, _ = build_cfg(func, set())
    loops = natural_loops(cfg)
    assert len(loops) == 2
    inner, outer = sorted(loops, key=lambda l: len(l.body))
    assert inner.body < outer.body


def test_loop_nesting_depth():
    func = parse_function("""
void f(int n) {
    while (n > 0) {
        while (n > 1) { n -= 1; }
        n -= 1;
    }
}
""")
    cfg, _ = build_cfg(func, set())
    depth = loop_nesting_depth(cfg)
    assert max(depth.values()) == 2
    assert depth[cfg.entry_id] == 0


def test_no_loops_in_straight_line():
    func = parse_function("void f() { print(1); }")
    cfg, _ = build_cfg(func, set())
    assert natural_loops(cfg) == []


# -- diagnostics & reports -----------------------------------------------------------


def test_diagnostic_render_contains_everything():
    diag = Diagnostic(
        code=ErrorCode.COLLECTIVE_MISMATCH, function="main",
        message="possible deadlock",
        collectives=(SourceRef("MPI_Bcast", 14),),
        conditionals=(13,),
        context="pw = P1 S2",
    )
    text = diag.render()
    assert "collective-mismatch" in text
    assert "MPI_Bcast (line 14)" in text
    assert "13" in text
    assert "P1 S2" in text


def test_diagnostic_bag_counting():
    bag = DiagnosticBag()
    bag.add(Diagnostic(code=ErrorCode.COLLECTIVE_MISMATCH, function="f", message="m"))
    bag.add(Diagnostic(code=ErrorCode.THREAD_LEVEL, function="f", message="m"))
    assert bag.count() == 2
    assert bag.count(ErrorCode.COLLECTIVE_MISMATCH) == 1
    assert len(bag.by_code(ErrorCode.THREAD_LEVEL)) == 1
    assert "no warnings" in DiagnosticBag().render()


def test_analysis_summary_structure():
    src = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); }
}
"""
    analysis = analyze_program(parse_program(src))
    summary = analysis_summary(analysis)
    assert summary["warnings_total"] == 1
    assert summary["functions"]["main"]["flagged"] is True
    assert summary["functions"]["main"]["collectives"] == 1
    assert summary["verified"] is False
    assert summary["warnings_by_code"]["collective-mismatch"] == 1


def test_render_report_verbose_shows_words():
    src = """
void main() {
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
    }
}
"""
    analysis = analyze_program(parse_program(src))
    text = render_report(analysis, verbose=True)
    assert "PARCOACH analysis" in text
    assert "pw =" in text
    assert "MPI_Barrier" in text
