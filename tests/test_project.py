"""Project layer: manifests, the merged cross-file session, line-offset
patching, the sharded artifact store, and the ``project serve`` front end."""

import io
import json
import os

import pytest

from repro.bench import make_project, write_project
from repro.cli import main
from repro.core.report import validate_report
from repro.core.session import SessionError
from repro.minilang.semantics import SemanticError, check_program
from repro.minilang.parser import parse_program
from repro.util.faultinject import clear_plan
from repro.project import (
    ManifestError,
    ProjectSession,
    ShardedStore,
    load_manifest,
    run_project_serve,
)

UTIL = """int bump(int v) {
    MPI_Barrier();
    return v + 1;
}

int plain(int v) {
    return v - 1;
}
"""

MAIN = """void main() {
    MPI_Init_thread(3);
    int x = 0;
    #pragma omp parallel num_threads(2)
    {
        x = bump(x);
    }
    x = plain(x);
    MPI_Finalize();
}
"""


def _write(root, rel, text):
    path = os.path.join(str(root), rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


@pytest.fixture(autouse=True)
def _clean_faults():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def project(tmp_path):
    _write(tmp_path, "util.mc", UTIL)
    _write(tmp_path, "main.mc", MAIN)
    return str(tmp_path)


# -- manifests ----------------------------------------------------------------------


def test_manifest_bare_scan_sorted(project):
    _write(project, "sub/extra.mini", "int nop(int v) { return v; }\n")
    manifest = load_manifest(project)
    assert manifest.files == ("main.mc", os.path.join("sub", "extra.mini"),
                              "util.mc")
    assert manifest.store_path is not None


def test_manifest_toml_roots_entries_and_store(project):
    _write(project, "parcoach.toml", """\
[project]
roots = ["."]
exclude = ["skip_*.mc"]
entries = ["main"]
initial_context = "P1"

[store]
enabled = false
""")
    _write(project, "skip_me.mc", "int nope(int v) { return v; }\n")
    manifest = load_manifest(project)
    assert manifest.files == ("main.mc", "util.mc")
    assert manifest.entries == ("main",)
    assert manifest.initial_context == "P1"
    assert manifest.store_path is None


def test_manifest_explicit_files_override(project):
    manifest = load_manifest(project,
                             files=[os.path.join(project, "util.mc")])
    assert manifest.files == ("util.mc",)


def test_manifest_errors(tmp_path, project):
    with pytest.raises(ManifestError):
        load_manifest(str(tmp_path / "nope"))
    os.makedirs(tmp_path / "empty")
    with pytest.raises(ManifestError):
        load_manifest(str(tmp_path / "empty"))
    _write(project, "parcoach.toml", "not toml [")
    with pytest.raises(ManifestError):
        load_manifest(project)


# -- the cross-file acceptance bug --------------------------------------------------


def test_cross_file_bug_flagged_with_cross_file_chain(project):
    with ProjectSession(project) as session:
        session.update_all()
        findings = session.report["findings"]
    codes = {f["code"] for f in findings}
    assert "collective-multithreaded" in codes
    diag = next(f for f in findings if f["code"] == "collective-multithreaded")
    assert diag["function"] == "bump"
    assert diag["file"] == "util.mc"
    assert diag["call_path"] == ["main", "bump"]
    assert diag["call_path_files"] == ["main.mc", "util.mc"]


def test_cross_file_bug_provably_missed_per_file(project):
    # The helper's file alone: clean under the empty context.
    from repro import analyze_program

    util = parse_program(UTIL, "util.mc")
    assert len(analyze_program(util).diagnostics) == 0
    # The caller's file alone: cannot even resolve the helper.
    with pytest.raises(SemanticError, match="UNKNOWN_FUNC"):
        check_program(parse_program(MAIN, "main.mc"), strict=True)


def test_validate_full_and_delta_reports(project):
    with ProjectSession(project) as session:
        delta = session.update_all()
        assert validate_report(session.report) == []
        assert validate_report(delta.report) == []
        assert session.report["tool"] == "project"


def test_file_qualified_fingerprints_distinct(tmp_path):
    # The same diagnostic text in two different files must not collide.
    body = ("int f{i}(int v) {{\n"
            "    int r = MPI_Comm_rank();\n"
            "    if (r > 0) {{\n"
            "        MPI_Barrier();\n"
            "    }}\n"
            "    return v;\n"
            "}}\n")
    _write(tmp_path, "a.mc", body.format(i=0))
    _write(tmp_path, "b.mc", body.format(i=1))
    with ProjectSession(str(tmp_path)) as session:
        session.update_all()
        findings = session.report["findings"]
    assert len(findings) == 2
    assert len({f["fingerprint"] for f in findings}) == 2
    assert {f["file"] for f in findings} == {"a.mc", "b.mc"}


# -- cross-file incremental invalidation --------------------------------------------


def test_edit_in_one_file_reanalyzes_cross_file_dependents(project):
    with ProjectSession(project) as session:
        session.update_all()
        assert len(session.report["findings"]) == 1
        # Remove bump's collective in util.mc: its summary changes, so its
        # caller main — defined in main.mc, textually untouched — must
        # re-analyze across the file boundary (and the finding disappears).
        _write(project, "util.mc",
               UTIL.replace("    MPI_Barrier();\n", ""))
        delta = session.update_file("util.mc")
        assert session.report["findings"] == []
    assert delta.changed == ("bump",)
    assert "main" in delta.dependents
    assert set(delta.reanalyzed) >= {"bump", "main"}
    assert "plain" not in delta.reanalyzed
    assert delta.findings_removed and delta.findings_total == 0


def test_helper_signature_change_rechecks_callers_in_other_file(project):
    with ProjectSession(project) as session:
        session.update_all()
        # bump now takes two parameters: the textually unchanged call in
        # main.mc is re-checked — and rejected — across the file boundary.
        _write(project, "util.mc",
               UTIL.replace("int bump(int v)", "int bump(int v, int w)"))
        with pytest.raises(SessionError) as err:
            session.update_file("util.mc")
        assert any("main.mc" in m and "bump" in m
                   for m in err.value.messages)
        # The failed update left the previous state intact.
        assert session.report["findings"]


def test_file_delete_close_reports_unknown_callee(project):
    with ProjectSession(project) as session:
        session.update_all()
        with pytest.raises(SessionError) as err:
            session.close_file("util.mc")
        assert any("bump" in m for m in err.value.messages)


def test_file_rename_keeps_findings(project):
    # Neither half of a rename is expressible alone: opening the new name
    # first defines duplicates, closing the old name first leaves unknown
    # callees.  rename_file does both in one atomic update.
    with ProjectSession(project) as session:
        session.update_all()
        fp_before = {f["fingerprint"]: f for f in session.report["findings"]}
        with pytest.raises(SessionError):
            session.close_file("util.mc")
        os.rename(os.path.join(project, "util.mc"),
                  os.path.join(project, "helpers.mc"))
        misses = session.engine.stats.misses
        delta = session.rename_file("util.mc", "helpers.mc")
        fp_after = {f["fingerprint"]: f for f in session.report["findings"]}
        # Equal text at equal lines: fingerprints survive the move, nothing
        # truly re-analyzes (reparse hits only).
        assert delta.changed == () and delta.removed == ()
        assert session.engine.stats.misses == misses
    # Findings are file-qualified, so the rename moves every fingerprint —
    # but the set of (code, function) findings is unchanged.
    assert {(f["code"], f["function"]) for f in fp_before.values()} \
        == {(f["code"], f["function"]) for f in fp_after.values()}
    assert fp_before.keys() != fp_after.keys()
    assert all(f["file"] == "helpers.mc" for f in fp_after.values()
               if f["function"] == "bump")
    assert delta.findings_total == len(fp_after)


def test_duplicate_function_across_files_names_both_files(project):
    _write(project, "dup.mc", "int plain(int v) { return v; }\n")
    with ProjectSession(project) as session:
        with pytest.raises(SessionError) as err:
            session.update_all()
    message = " ".join(err.value.messages)
    assert "dup.mc" in message and "util.mc" in message


# -- line-offset patching -----------------------------------------------------------


def test_comment_insert_patches_with_zero_misses(project):
    with ProjectSession(project) as session:
        session.update_all()
        lines_before = [ref["line"]
                        for f in session.report["findings"]
                        for ref in f["collectives"]]
        misses = session.engine.stats.misses
        _write(project, "util.mc", "// a new comment line\n" + UTIL)
        delta = session.update_file("util.mc")
        lines_after = [ref["line"]
                       for f in session.report["findings"]
                       for ref in f["collectives"]]
        assert session.engine.stats.misses == misses  # zero engine misses
    assert set(delta.patched) == {"bump", "plain"}
    assert delta.changed == () and delta.reanalyzed == ()
    assert session.engine.stats.line_patches >= 2
    assert lines_after == [line + 1 for line in lines_before]


def test_patch_then_real_edit_still_correct(project):
    with ProjectSession(project) as session:
        session.update_all()
        _write(project, "util.mc", "\n\n" + UTIL)
        session.update_file("util.mc")
        # A real edit after a patch must re-analyze against the shifted
        # fingerprints, not the stale pre-patch ones.
        _write(project, "util.mc",
               "\n\n" + UTIL.replace("v + 1", "v + 3"))
        delta = session.update_file("util.mc")
    # The edit is detected against the *shifted* fingerprint (a stale
    # pre-patch fingerprint would either misreport the change set or serve
    # bump from a stale entry), and the old artifact is evicted.
    assert delta.changed == ("bump",)
    assert delta.reanalyzed == ("bump",)
    assert delta.invalidated_entries >= 1
    assert "main" in delta.dependents


def test_between_chunk_whitespace_is_no_op(project):
    with ProjectSession(project) as session:
        session.update_all()
        _write(project, "util.mc",
               UTIL.replace("}\n\nint plain", "}\n\n\nint plain"))
        delta = session.update_file("util.mc")
    # The second chunk moved: patched, nothing re-analyzed.
    assert delta.patched == ("plain",)
    assert delta.reanalyzed == ()


# -- the sharded store --------------------------------------------------------------


def test_store_roundtrip_and_corruption_is_a_miss(tmp_path):
    store = ShardedStore(str(tmp_path / "store"))
    key = ("ab" * 32, (), "paper", (), (), ())
    assert store.load(key) is None
    store.save(key, {"fake": "artifacts"}, (1, 2, 3))
    assert store.load(key) == ({"fake": "artifacts"}, (1, 2, 3))
    assert store.entries() == 1
    # Entries live inside the current generation directory.
    shard = os.path.join(store.root, store.generation, key[0][:2])
    assert os.path.isdir(shard)
    # Torn/corrupt entries read as misses, never raise.
    for name in os.listdir(shard):
        if name.endswith(".pkl"):
            with open(os.path.join(shard, name), "wb") as handle:
                handle.write(b"\x80garbage")
    assert store.load(key) is None


def test_store_stale_version_entry_is_a_miss_and_reclaimed(tmp_path):
    import pickle

    from repro.project import ANALYSIS_VERSION, STORE_FORMAT

    store = ShardedStore(str(tmp_path / "store"))
    key = ("cd" * 32, (), "paper", (), (), ())
    store.save(key, {"v": 1}, (7,))
    path = store._path(key)
    # Rewrite the entry as if an *older* analyzer had produced it: same
    # location, stale ANALYSIS_VERSION stamp.
    with open(path, "wb") as handle:
        pickle.dump((STORE_FORMAT, ANALYSIS_VERSION - 1, {"v": 0}, (7,)),
                    handle)
    assert store.load(key) is None          # never served
    assert not os.path.exists(path)         # reclaimed on sight
    # A pre-generation 3-tuple payload is equally a miss.
    store.save(key, {"v": 2}, (7,))
    with open(path, "wb") as handle:
        pickle.dump((STORE_FORMAT, {"v": 0}, (7,)), handle)
    assert store.load(key) is None


def test_store_gc_prunes_stale_generations(tmp_path):
    store = ShardedStore(str(tmp_path / "store"))
    key = ("ef" * 32, (), "paper", (), (), ())
    store.save(key, {"keep": True}, ())
    # A stale generation and a legacy pre-generation shard dir, each with
    # one entry.
    for stale_dir in ("g0-9", "ab"):
        shard = os.path.join(store.root, stale_dir)
        if stale_dir != "ab":
            shard = os.path.join(shard, "ab")
        os.makedirs(shard)
        with open(os.path.join(shard, "x.pkl"), "wb") as handle:
            handle.write(b"old")
    assert set(store.generations()) == {"legacy", "g0-9", store.generation}
    gens, entries = store.gc()
    assert (gens, entries) == (2, 2)
    assert os.listdir(store.root) == [store.generation]
    assert store.load(key) == ({"keep": True}, ())
    # keep=N retains the most recent stale generations.
    os.makedirs(os.path.join(store.root, "g0-8"))
    os.makedirs(os.path.join(store.root, "g0-9"))
    gens, _entries = store.gc(keep=1)
    assert gens == 1
    assert sorted(os.listdir(store.root)) == sorted(
        ["g0-9", store.generation])


def test_cli_project_gc(tmp_path, capsys):
    _write(tmp_path, "clean.mc", "void main() { MPI_Barrier(); }\n")
    root = str(tmp_path)
    assert main(["project", "analyze", root]) == 0
    capsys.readouterr()
    store_root = os.path.join(root, ".parcoach", "store")
    os.makedirs(os.path.join(store_root, "g0-9", "ab"))
    with open(os.path.join(store_root, "g0-9", "ab", "x.pkl"), "wb") as h:
        h.write(b"old")
    assert main(["project", "gc", root]) == 0
    out = capsys.readouterr().out
    assert "removed 1 stale generation(s)" in out
    assert not os.path.exists(os.path.join(store_root, "g0-9"))
    from repro.project import store_generation
    assert os.path.isdir(os.path.join(store_root, store_generation()))


def test_parallel_sessions_share_warm_artifacts(project):
    with ProjectSession(project) as first:
        first.update_all()
        assert first.engine.stats.misses > 0
        assert first.engine.stats.store_writes > 0
    with ProjectSession(project) as second:
        second.update_all()
        stats = second.engine.stats
        assert stats.misses == 0
        assert stats.store_hits > 0
        assert second.report["findings"]
    # Identical findings from warm artifacts.
    with ProjectSession(project, store=False) as cold:
        cold.update_all()
        assert cold.engine.stats.misses > 0
        with ProjectSession(project) as warm:
            warm.update_all()
            assert ({f["fingerprint"] for f in warm.report["findings"]}
                    == {f["fingerprint"] for f in cold.report["findings"]})


def test_store_disabled_by_flag(project):
    with ProjectSession(project, store=False) as session:
        session.update_all()
        assert session.store is None
        assert session.engine.stats.store_writes == 0
    assert not os.path.isdir(os.path.join(project, ".parcoach"))


# -- the 100-file acceptance project ------------------------------------------------


def test_generated_project_acceptance(tmp_path):
    files = make_project(n_files=100)
    assert len(files) == 102
    root = str(tmp_path / "proj")
    write_project(files, root)
    with ProjectSession(root) as session:
        session.update_all()
        findings = session.report["findings"]
        assert len(findings) == 1
        diag = findings[0]
        assert diag["code"] == "collective-multithreaded"
        assert diag["function"] == "bug_helper"
        assert diag["file"] == "helpers.mc"
        assert diag["call_path"] == ["main", "bug_helper"]
        assert diag["call_path_files"] == ["main.mc", "helpers.mc"]

        # Edit one function in one file: only it + its cross-file dependent
        # closure re-analyzes, not the whole project.
        edited = files["m050.mc"].replace("v += 50;", "v += 51;", 1)
        with open(os.path.join(root, "m050.mc"), "w") as handle:
            handle.write(edited)
        delta = session.update_file("m050.mc")
        assert delta.changed == ("m50_f0",)
        reanalyzed = set(delta.reanalyzed)
        assert "m50_f0" in reanalyzed
        # The dependent closure is the caller chain m49_f0 … m0_f0 + main —
        # a strict subset of the project.
        assert reanalyzed <= ({f"m{i}_f0" for i in range(51)} | {"main"})
        assert "bug_helper" not in reanalyzed
        assert len(reanalyzed) < 60 < len(session._fingerprints)
    # Per-file analysis of the bug's two files provably misses it.
    helpers = parse_program(files["helpers.mc"], "helpers.mc")
    from repro import analyze_program
    assert len(analyze_program(helpers).diagnostics) == 0
    with pytest.raises(SemanticError, match="UNKNOWN_FUNC"):
        check_program(parse_program(files["main.mc"], "main.mc"),
                      strict=True)


# -- O(edit) assembly: identity, equivalence, bounded caches ------------------------


def test_fast_update_report_byte_identical_to_cold(tmp_path):
    """A chain of warm one-function edits must render the exact Report IR
    bytes a cold session produces on the final tree — the delta-maintained
    report cache is an optimization, never a semantic fork."""
    from repro.core.report import render_json

    files = make_project(n_files=100)
    root = str(tmp_path / "proj")
    write_project(files, root)
    with ProjectSession(root, store=False) as session:
        session.update_all()
        for i in (1, 2, 3):
            edited = files["m050.mc"].replace(
                "v += 50;", f"v += 50;\n    v += {i};", 1)
            _write(root, "m050.mc", edited)
            delta = session.update_file("m050.mc")
            assert delta.changed == ("m50_f0",)
        assert session.fast_updates >= 1
        warm_bytes = render_json(session.report)
    with ProjectSession(root, store=False) as cold:
        cold.update_all()
        cold_bytes = render_json(cold.report)
    assert warm_bytes == cold_bytes


def test_checked_memo_is_lru_not_fifo(project):
    """The semantic-check memo must evict by recency: a function object
    probed on every update stays resident however many new objects pass
    through."""
    with ProjectSession(project, store=False) as session:
        session._CHECKED_LIMIT = 4
        hot, *rest = [object() for _ in range(8)]
        session._note_checked([hot])
        for cold_obj in rest:
            assert session._checked_probe(hot)      # keeps `hot` recent
            session._note_checked([cold_obj])
        assert len(session._checked) == 4
        assert session._checked_probe(hot)          # survived 7 insertions
        assert not session._checked_probe(rest[0])  # FIFO victim was oldest


def test_collective_funcs_tracks_callgraph_fixpoint(tmp_path):
    """The session's incrementally maintained collective-function set (fed
    by summary emptiness flips on the fast path) must equal the from-scratch
    reachability fixpoint after edits that flip it both ways."""
    from repro.core.sites import collective_call_graph

    files = make_project(n_files=100)
    root = str(tmp_path / "proj")
    write_project(files, root)
    with ProjectSession(root, store=False) as session:
        session.update_all()
        assert session._collective_funcs == collective_call_graph(
            session._program)
        # Cut the f0 chain at m50: m0_f0 … m50_f0 all lose collective
        # reachability (the Allreduce sits in the last file's leaves).
        cut = files["m050.mc"].replace("v = m51_f0(v);", "v += 1;", 1)
        _write(root, "m050.mc", cut)
        delta = session.update_file("m050.mc")
        assert delta.changed == ("m50_f0",)
        expected = collective_call_graph(session._program)
        assert session._collective_funcs == expected
        assert "m50_f0" not in session._collective_funcs
        assert "m49_f0" not in session._collective_funcs
        # Restore the call: everything flips back.
        _write(root, "m050.mc", files["m050.mc"])
        session.update_file("m050.mc")
        assert session._collective_funcs == collective_call_graph(
            session._program)
        assert "m49_f0" in session._collective_funcs


def test_recursive_and_expression_collectives_fixpoint(tmp_path):
    """Emptiness-flip maintenance must agree with the fixpoint on the
    shapes that stress it: recursion cycles and expression-embedded calls."""
    from repro.core.sites import collective_call_graph

    _write(tmp_path, "rec.mc",
           "int spin(int v) {\n"
           "    if (v > 0) { v = spin(v - 1); }\n"
           "    MPI_Barrier();\n"
           "    return v;\n"
           "}\n")
    _write(tmp_path, "expr.mc",
           "int wrap(int v) {\n"
           "    int x = spin(v);\n"
           "    return x;\n"
           "}\n\n"
           "int dead(int v) {\n"
           "    return v;\n"
           "}\n")
    _write(tmp_path, "main.mc",
           "void main() {\n"
           "    MPI_Init();\n"
           "    int x = wrap(1);\n"
           "    x = dead(x);\n"
           "    MPI_Finalize();\n"
           "}\n")
    root = str(tmp_path)
    with ProjectSession(root, store=False) as session:
        session.update_all()
        expected = collective_call_graph(session._program)
        assert session._collective_funcs == expected
        assert {"spin", "wrap", "main"} <= expected
        assert "dead" not in expected
        # Drop the barrier out of the recursive cycle: the whole chain
        # (cycle included) must flip off.
        _write(tmp_path, "rec.mc",
               "int spin(int v) {\n"
               "    if (v > 0) { v = spin(v - 1); }\n"
               "    return v;\n"
               "}\n")
        session.update_file("rec.mc")
        expected = collective_call_graph(session._program)
        assert session._collective_funcs == expected
        assert "spin" not in expected and "wrap" not in expected


# -- serve front end ----------------------------------------------------------------


def _serve(project_root, script, **kwargs):
    out = io.StringIO()
    with ProjectSession(project_root, **kwargs.pop("session_kwargs", {})) \
            as session:
        code = run_project_serve(session, stdin=io.StringIO(script),
                                 stdout=out, **kwargs)
    assert code == 0
    return [json.loads(line) for line in out.getvalue().splitlines()]


def test_serve_open_edit_stats_quit(project):
    docs = _serve(project,
                  "@1 analyze\n@2 edit util.mc\n@3 stats\n@4 ping\nquit\n")
    assert [d["request_id"] for d in docs] == ["1", "2", "3", "4"]
    assert all(validate_report(d) == [] for d in docs)
    first = docs[0]["summary"]["incremental"]
    assert first["findings_total"] == 1
    assert docs[1]["summary"]["incremental"]["no_op"] is True
    stats = docs[2]["summary"]["stats"]
    assert stats["project"]["functions"] == 3
    assert docs[3]["summary"]["ping"]["ok"] is True


def test_serve_patched_edit_answers_from_cache(project):
    out = io.StringIO()
    with ProjectSession(project) as session:
        run_project_serve(session,
                          stdin=io.StringIO("@1 analyze\nquit\n"),
                          stdout=out)
        misses = session.engine.stats.misses
        _write(project, "util.mc", "// shifted\n" + UTIL)
        run_project_serve(session,
                          stdin=io.StringIO("@2 edit util.mc\nquit\n"),
                          stdout=out)
        assert session.engine.stats.misses == misses
    docs = [json.loads(line) for line in out.getvalue().splitlines()]
    inc = docs[1]["summary"]["incremental"]
    assert inc["patched"] == ["bump", "plain"]
    assert inc["reanalyzed"] == []


def test_serve_close_and_errors(project):
    _write(project, "solo.mc", "int solo(int v) { return v; }\n")
    docs = _serve(project,
                  "@1 open solo.mc\n@2 close solo.mc\n@3 close solo.mc\n"
                  "@4 bogus\n@5 open\nquit\n")
    assert docs[0]["summary"]["incremental"]["changed"] == ["solo"]
    assert "solo" in docs[1]["summary"]["incremental"]["removed"]
    assert docs[2]["verdict"] == "error"
    assert docs[3]["verdict"] == "error"
    assert "usage" in docs[4]["summary"]["errors"][0]


def test_serve_self_heals_under_faults(project, monkeypatch):
    # One injected crash inside analyze: attempt 1 recovers the file and
    # the request still answers with the real delta.
    monkeypatch.setenv("PARCOACH_FAULTS", "session.analyze:1=exception")
    clear_plan()  # re-read the environment
    docs = _serve(project, "@1 analyze\nquit\n")
    assert docs[0]["request_id"] == "1"
    assert docs[0]["summary"]["incremental"]["findings_total"] == 1


def test_serve_manifest_fault_is_an_error_not_a_crash(project, monkeypatch):
    _write(project, "parcoach.toml", "[project]\nroots = [\".\"]\n")
    monkeypatch.setenv("PARCOACH_FAULTS", "project.manifest_read:1=truncate")
    clear_plan()
    # Truncating the manifest mid-read surfaces as ManifestError (possibly
    # a still-valid prefix parse) — never a crash.
    try:
        with ProjectSession(project) as session:
            session.update_all()
    except ManifestError:
        pass


def test_serve_shard_lock_fault_does_not_fail_analysis(project, monkeypatch):
    monkeypatch.setenv("PARCOACH_FAULTS", "project.shard_lock:1=oserror")
    clear_plan()
    with ProjectSession(project) as session:
        delta = session.update_all()
        assert delta.findings_total == 1
        # One write was sacrificed, the rest went through.
        assert session.engine.stats.store_writes < session.engine.stats.misses


def test_patch_fault_self_heals_in_serve(project, monkeypatch):
    with ProjectSession(project) as session:
        out = io.StringIO()
        run_project_serve(session, stdin=io.StringIO("analyze\nquit\n"),
                          stdout=out)
        monkeypatch.setenv("PARCOACH_FAULTS", "project.patch:1=exception")
        clear_plan()
        _write(project, "util.mc", "// shifted\n" + UTIL)
        out = io.StringIO()
        run_project_serve(session,
                          stdin=io.StringIO("@p edit util.mc\nquit\n"),
                          stdout=out)
        doc = json.loads(out.getvalue().splitlines()[0])
        # The crashed patch recovers (file evicted, re-read cold) and the
        # answer is still the correct post-edit state.
        assert doc["request_id"] == "p"
        assert doc["summary"]["incremental"]["findings_total"] == 1
        assert session.recoveries >= 1


def test_serve_deadline_ladder(project):
    times = iter([0.0] + [1000.0] * 200)

    def clock():
        return next(times)

    docs = _serve(project, "@1 analyze\nquit\n", deadline_ms=50.0,
                  clock=clock)
    assert docs[0]["summary"]["timeout"]["deadline_ms"] == 50.0
    assert docs[0]["verdict"] == "error"
    # The degraded answer still arrives after the timeout report.
    assert docs[-1]["summary"]["incremental"]["findings_total"] >= 0


def test_serve_xxl_edit_rename_close_sublinear(tmp_path):
    """Live ``project serve`` on the 1000-file (XXL) project: a comment
    insertion answers with zero engine misses, a real one-function edit
    re-analyzes a sub-linear slice (asserted through the served counters),
    and rename/close keep working at that scale."""
    files = make_project(n_files=1000)
    root = str(tmp_path / "xxl")
    write_project(files, root)
    _write(root, "solo.mc", "int solo(int v) { return v; }\n")
    out = io.StringIO()
    with ProjectSession(root, store=False) as session:
        run_project_serve(session, stdin=io.StringIO("@1 analyze\nquit\n"),
                          stdout=out)
        total_funcs = len(session._fingerprints)
        assert total_funcs > 2000
        misses = session.engine.stats.misses

        # Whole-chunk line shift: the answer comes from patched artifacts.
        _write(root, "m500.mc", "// pad line\n" + files["m500.mc"])
        run_project_serve(session,
                          stdin=io.StringIO("@2 edit m500.mc\nquit\n"),
                          stdout=out)
        assert session.engine.stats.misses == misses

        # One-function edit: sub-linear re-analysis, O(project) reuse.
        reuses = session.engine.stats.assembly_reuses
        edited = files["m500.mc"].replace(
            "v += 500;", "v += 500;\n    v += 9;", 1)
        _write(root, "m500.mc", edited)
        run_project_serve(
            session, stdin=io.StringIO("@3 edit m500.mc\n@4 stats\nquit\n"),
            stdout=out)
        assert session.engine.stats.misses - misses < total_funcs // 10
        assert (session.engine.stats.assembly_reuses - reuses
                >= total_funcs - 100)

        os.rename(os.path.join(root, "m500.mc"),
                  os.path.join(root, "m500x.mc"))
        run_project_serve(
            session, stdin=io.StringIO("@5 rename m500.mc m500x.mc\nquit\n"),
            stdout=out)
        run_project_serve(session,
                          stdin=io.StringIO("@6 close solo.mc\nquit\n"),
                          stdout=out)
        assert "m500x.mc" in session._files and "m500.mc" not in session._files
    docs = {d["request_id"]: d
            for d in (json.loads(line)
                      for line in out.getvalue().splitlines())}
    assert docs["1"]["summary"]["incremental"]["findings_total"] == 1
    inc2 = docs["2"]["summary"]["incremental"]
    assert inc2["patched"] and inc2["reanalyzed"] == []
    inc3 = docs["3"]["summary"]["incremental"]
    assert inc3["changed"] == ["m500_f0"]
    assert 0 < len(inc3["reanalyzed"]) < total_funcs // 4
    served = docs["4"]["summary"]["stats"]
    assert served["engine"]["assembly_reuses"] > 0
    assert served["engine"]["graph_rebuilds"] >= 0
    assert served["engine"]["edges_recomputed"] > 0
    assert served["session"]["fast_updates"] >= 2
    assert docs["5"]["verdict"] != "error"
    assert docs["5"]["summary"]["incremental"]["findings_total"] == 1
    assert "solo" in docs["6"]["summary"]["incremental"]["removed"]


# -- CLI ----------------------------------------------------------------------------


def test_cli_project_analyze_text_and_json(project, capsys):
    assert main(["project", "analyze", project]) == 1
    out = capsys.readouterr().out
    assert "util.mc:bump" in out
    assert "main (main.mc)" in out and "bump (util.mc)" in out
    assert main(["project", "analyze", project, "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert validate_report(doc) == []
    assert doc["tool"] == "project"


def test_cli_project_analyze_clean_and_errors(tmp_path, capsys):
    _write(tmp_path, "ok.mc", "int f(int v) { return v; }\n")
    assert main(["project", "analyze", str(tmp_path), "--no-store"]) == 0
    assert main(["project", "analyze", str(tmp_path / "missing")]) == 2
