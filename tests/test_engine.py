"""AnalysisEngine tests: cache correctness, remapping, invalidation,
parallel determinism, and key discrimination."""

import pytest

from repro.bench import CASES, scale_suite
from repro.core import (
    AnalysisEngine,
    analyze_program,
    analysis_summary,
    instrument_program,
    render_report,
)
from repro.minilang.parser import parse_program
from repro.minilang.pretty import pretty
from repro.parallelism import parse_word


def _diag_tuples(analysis):
    return [
        (d.code, d.function, d.message, d.collectives, d.conditionals, d.context)
        for d in analysis.diagnostics
    ]


def test_warm_engine_identical_to_cold_across_gallery():
    """Satellite acceptance: a warm engine returns diagnostics identical to a
    cold run across the whole errors gallery."""
    programs = {name: parse_program(case.source, name)
                for name, case in CASES.items()}
    cold = {name: analyze_program(p) for name, p in programs.items()}

    engine = AnalysisEngine()
    for _ in range(2):  # second pass is fully cache-hit
        for name, p in programs.items():
            warm = engine.analyze(p)
            assert _diag_tuples(warm) == _diag_tuples(cold[name]), name
            assert render_report(warm, verbose=True) == \
                render_report(cold[name], verbose=True), name
            assert analysis_summary(warm) == analysis_summary(cold[name]), name
    n_funcs = sum(len(p.funcs) for p in programs.values())
    assert engine.stats.hits == n_funcs  # second pass fully served by cache
    assert engine.stats.misses == n_funcs


def test_reparse_hit_remaps_onto_new_ast():
    """A structurally identical re-parse must hit the cache and still drive
    instrumentation of the *new* AST correctly."""
    src = CASES["rank_dependent_bcast"].source
    engine = AnalysisEngine()
    p1 = parse_program(src, "x.mc")
    p2 = parse_program(src, "x.mc")
    a1 = engine.analyze(p1)
    a2 = engine.analyze(p2)
    # The reparse hit is served lazily: no per-uid remap work happens until
    # the result is actually consumed (here: instrumented below).
    assert engine.stats.lazy_hits == 1
    assert engine.stats.remaps == 0
    # Same instrumented source from both (uids remapped onto p2's nodes).
    assert pretty(instrument_program(a1)[0]) == pretty(instrument_program(a2)[0])
    ref = pretty(instrument_program(analyze_program(p2))[0])
    assert pretty(instrument_program(a2)[0]) == ref
    # The remapped FunctionAnalysis is anchored on p2, not p1 — and the
    # remap was materialized exactly once, by the consumption above.
    assert engine.stats.remaps == 1
    assert a2.function("main").func is p2.funcs[0]
    assert a2.function("main").sites[0].stmt in list(p2.funcs[0].walk())


def test_in_place_instrumentation_invalidates_cache():
    src = CASES["rank_dependent_bcast"].source
    p = parse_program(src, "x.mc")
    engine = AnalysisEngine()
    a = engine.analyze(p)
    instrument_program(a, in_place=True)  # mutates p's AST
    again = engine.analyze(p)
    fresh = analyze_program(p)
    assert _diag_tuples(again) == _diag_tuples(fresh)
    assert render_report(again) == render_report(fresh)


def test_cache_key_discriminates_precision_and_word():
    src = CASES["balanced_if_fp"].source  # paper warns, counting is clean
    p = parse_program(src, "x.mc")
    engine = AnalysisEngine()
    paper = engine.analyze(p, precision="paper")
    counting = engine.analyze(p, precision="counting")
    assert len(paper.diagnostics) == 1
    assert len(counting.diagnostics) == 0
    assert engine.stats.misses == 2  # no cross-precision hit

    word = parse_word("P1")
    ctx = engine.analyze(p, precision="paper",
                         initial_words={f.name: word for f in p.funcs})
    assert engine.stats.misses == 3  # initial word is part of the key
    assert _diag_tuples(ctx) != _diag_tuples(paper)


def test_cache_key_tracks_collective_call_graph():
    """Identical function text analyzes differently when a callee becomes
    collective — the key must include the resolved call sets."""
    caller = "void run() {\n    helper();\n}\n"
    clean = caller + "\nvoid helper() {\n    int x = 1;\n}\n"
    dirty = caller + "\nvoid helper() {\n    MPI_Barrier();\n}\n"
    engine = AnalysisEngine()
    a_clean = engine.analyze(parse_program(clean, "a.mc"))
    a_dirty = engine.analyze(parse_program(dirty, "b.mc"))
    # `run` is byte-identical in both programs but must not share artifacts.
    assert not a_clean.function("run").sites
    assert a_dirty.function("run").sites
    assert a_dirty.collective_funcs == {"run", "helper"}


def test_parallel_engine_matches_serial():
    src = scale_suite()["S"]
    p = parse_program(src, "s.mc")
    serial = analyze_program(p)
    with AnalysisEngine(jobs=2, cache=False) as engine:
        parallel = engine.analyze(p)
        assert engine.stats.parallel_tasks == len(p.funcs)
    assert _diag_tuples(parallel) == _diag_tuples(serial)
    assert render_report(parallel, verbose=True) == render_report(serial, verbose=True)
    assert pretty(instrument_program(parallel)[0]) == \
        pretty(instrument_program(serial)[0])


def test_clear_cache_and_stats():
    src = CASES["clean_masteronly"].source
    p = parse_program(src, "x.mc")
    engine = AnalysisEngine()
    engine.analyze(p)
    engine.analyze(p)
    info = engine.cache_info()
    assert info["entries"] == 1
    assert info["hits"] == 1 and info["misses"] == 1
    assert 0.0 < info["hit_rate"] < 1.0
    engine.clear_cache()
    assert engine.cache_info()["entries"] == 0
    engine.analyze(p)
    assert engine.stats.misses == 2


def test_engine_matches_driver_on_prebuilt_cfgs():
    from repro.opt import run_middle_end

    src = CASES["mismatch_through_call"].source
    p = parse_program(src, "x.mc")
    middle = run_middle_end(p)
    ref = analyze_program(p, cfgs=middle.cfgs)
    engine = AnalysisEngine()
    got = engine.analyze(p, cfgs=middle.cfgs)
    assert _diag_tuples(got) == _diag_tuples(ref)
    assert got.function("main").cfg is middle.cfgs["main"][0]
    # Prebuilt-CFG artifacts bypass the cache entirely: they are neither
    # stored (a later cfgs-free analyze rebuilds its own CFG) nor served
    # from it (a fresh cfgs= call always uses the supplied CFG).
    assert engine.cache_info()["entries"] == 0
    own = engine.analyze(p)
    assert own.function("main").cfg is not middle.cfgs["main"][0]
    via_cache = engine.analyze(p, cfgs=middle.cfgs)
    assert via_cache.function("main").cfg is middle.cfgs["main"][0]
    assert _diag_tuples(own) == _diag_tuples(via_cache) == _diag_tuples(ref)


# ---------------------------------------------------------------------------
# Lifecycle edges: close() idempotence, analyze-after-close, pool persistence
# ---------------------------------------------------------------------------


def test_close_is_idempotent_and_safe_without_pool():
    engine = AnalysisEngine()  # jobs=1: no pool is ever created
    engine.close()
    engine.close()  # second close is a no-op, not an error
    with AnalysisEngine(jobs=2) as engine:
        pass  # context exit closes a pool that was never spawned
    engine.close()  # and closing again after __exit__ still works


def test_analyze_after_close_respawns_pool():
    src = scale_suite()["S"]
    p = parse_program(src, "s.mc")
    serial = analyze_program(p)
    engine = AnalysisEngine(jobs=2, cache=False)
    try:
        first = engine.analyze(p)
        pool = engine._pool
        assert pool is not None
        engine.close()
        assert engine._pool is None
        # The engine stays usable: a later jobs>1 analyze lazily spawns a
        # fresh pool and produces identical output.
        second = engine.analyze(p)
        assert engine._pool is not None
        assert engine._pool is not pool
        assert _diag_tuples(first) == _diag_tuples(second) == _diag_tuples(serial)
    finally:
        engine.close()


def test_persistent_pool_reused_across_analyze_calls():
    src = scale_suite()["S"]
    p1 = parse_program(src, "one.mc")
    p2 = parse_program(src, "two.mc")
    with AnalysisEngine(jobs=2, cache=False) as engine:
        engine.analyze(p1)
        pool = engine._pool
        assert pool is not None
        tasks_after_first = engine.stats.parallel_tasks
        engine.analyze(p2)
        assert engine._pool is pool  # same pool object: no respawn per call
        assert engine.stats.parallel_tasks == 2 * tasks_after_first
    assert engine._pool is None  # context manager shut it down


def test_cached_engine_skips_pool_when_everything_hits():
    src = scale_suite()["S"]
    p = parse_program(src, "s.mc")
    with AnalysisEngine(jobs=2, cache=True) as engine:
        engine.analyze(p)
        misses = engine.stats.misses
        assert misses == len(p.funcs)
        engine.analyze(p)  # identity fast path: zero new pool tasks
        assert engine.stats.misses == misses
        assert engine.stats.parallel_tasks == misses


# -- lazy remap (fingerprint-native incremental analysis) ---------------------------


def test_reparse_hit_with_rendering_disabled_does_zero_remap_work():
    """The acceptance gate of the fingerprint-native store: an analyze that
    is served entirely by reparse hits and whose result is never inspected
    must do no per-uid remap work at all."""
    src = scale_suite()["S"]
    engine = AnalysisEngine()
    engine.analyze(parse_program(src, "s.mc")).force()  # fill + render once
    p2 = parse_program(src, "s.mc")
    lazy = engine.analyze(p2)  # rendering disabled: result untouched
    assert engine.stats.lazy_hits == len(p2.funcs)
    assert engine.stats.remaps == 0
    assert engine.stats.remap_fallbacks == 0
    assert not lazy.materialized
    # First touch materializes — exactly once per function.
    assert lazy.function("main") is not None
    assert lazy.materialized
    assert engine.stats.remaps == len(p2.funcs)


def test_lazy_result_equals_eager_result():
    src = CASES["rank_dependent_bcast"].source
    engine = AnalysisEngine()
    eager = engine.analyze(parse_program(src, "x.mc"))
    lazy = engine.analyze(parse_program(src, "x.mc"))
    assert render_report(eager, verbose=True) == \
        render_report(lazy, verbose=True)
    assert _diag_tuples(eager) == _diag_tuples(lazy)


def test_lazy_remap_falls_back_when_cache_source_mutated():
    """A deferred remap whose cached AST was mutated (in-place
    instrumentation) after the lookup must re-analyze, not serve garbage."""
    src = CASES["rank_dependent_bcast"].source
    engine = AnalysisEngine()
    p1 = parse_program(src, "x.mc")
    a1 = engine.analyze(p1)
    p2 = parse_program(src, "x.mc")
    lazy = engine.analyze(p2)  # deferred remap onto p1's cached artifacts
    instrument_program(a1, in_place=True)  # mutates p1 under the cache
    fresh = analyze_program(parse_program(src, "x.mc"))
    assert render_report(lazy) == render_report(fresh)
    assert engine.stats.remap_fallbacks >= 1


def test_invalidate_fingerprints_evicts_only_matching_entries():
    from repro.core.engine import ast_fingerprint

    src = scale_suite()["S"]
    engine = AnalysisEngine()
    p = parse_program(src, "s.mc")
    engine.analyze(p)
    entries = engine.cache_info()["entries"]
    target = ast_fingerprint(p.funcs[0])
    dropped = engine.invalidate_fingerprints({target})
    assert dropped >= 1
    assert engine.cache_info()["entries"] == entries - dropped
    assert engine.stats.evictions == dropped
    assert engine.invalidate_fingerprints(set()) == 0
    # Only the evicted function misses on the next analyze.
    misses = engine.stats.misses
    engine.analyze(p).force()
    assert engine.stats.misses == misses + dropped


def test_fingerprint_ignores_columns_but_not_lines():
    from repro.core.engine import ast_fingerprint

    base = "void main() {\n    int x = 1;\n}\n"
    spaced = "void main() {\n    int  x  =  1;\n}\n"
    shifted = "void main() {\n\n    int x = 1;\n}\n"
    fp = lambda s: ast_fingerprint(parse_program(s, "p.mc").funcs[0])
    assert fp(base) == fp(spaced)
    assert fp(base) != fp(shifted)


def test_stats_json_round_trip():
    import json

    from repro.core.engine import EngineStats

    src = scale_suite()["S"]
    engine = AnalysisEngine()
    engine.analyze(parse_program(src, "s.mc")).force()
    engine.analyze(parse_program(src, "s.mc")).force()
    stats = engine.stats
    assert stats.lazy_hits > 0
    data = json.loads(json.dumps(stats.as_dict()))
    assert EngineStats.from_dict(data) == stats
    assert data["deferred_remaps"] == stats.deferred_remaps
