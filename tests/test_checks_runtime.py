"""Unit tests for the runtime check library (CC protocol, ENTER counters)."""

import pytest

from repro.mpi.thread_levels import ThreadLevel
from repro.runtime import (
    CheckState,
    CollectiveMismatchError,
    ConcurrentCollectiveError,
    MpiWorld,
    ThreadContextError,
)


def run_world(nprocs, fn, timeout=3.0):
    world = MpiWorld(nprocs, thread_level=ThreadLevel.MULTIPLE, timeout=timeout)
    return world.run(fn)


def test_cc_matching_colors_pass():
    def body(proc):
        checks = CheckState(proc)
        for color in (3, 1, 12):
            checks.cc(color, "op", 10)
        return proc.cc_calls

    result = run_world(3, body)
    assert result.ok
    assert result.returns[0] == 3


def test_cc_mismatch_aborts_with_both_sides_named():
    def body(proc):
        checks = CheckState(proc)
        if proc.rank == 0:
            checks.cc(2, "MPI_Bcast", 14)   # color of Bcast
        else:
            checks.cc(0, "<return>", 20)    # heading for return

    result = run_world(2, body)
    assert isinstance(result.error, CollectiveMismatchError)
    message = str(result.error)
    assert "MPI_Bcast" in message or "<return>" in message
    assert result.error.detected_by == "CC"


def test_cc_after_finalize_is_noop():
    def body(proc):
        checks = CheckState(proc)
        proc.collective("MPI_Finalize", (), None)
        checks.cc(0, "<return>", 99)  # must not attempt MPI
        return proc.cc_calls

    result = run_world(2, body)
    assert result.ok
    assert result.returns[0] == 0


def test_enter_single_thread_passes():
    def body(proc):
        checks = CheckState(proc, {7: "multithread"})
        for _ in range(10):
            checks.enter(7, "MPI_Barrier")
            checks.exit(7)
        return proc.enter_checks

    result = run_world(1, body)
    assert result.ok
    assert result.returns[0] == 10


def test_enter_overlap_multithread_kind():
    def body(proc):
        checks = CheckState(proc, {5: "multithread"})
        checks.enter(5, "MPI_Barrier")
        checks.enter(5, "MPI_Barrier")  # second entry without exit

    result = run_world(1, body)
    assert isinstance(result.error, ThreadContextError)


def test_enter_overlap_concurrent_kind():
    def body(proc):
        checks = CheckState(proc, {5: "concurrent"})
        checks.enter(5, "MPI_Reduce")
        checks.enter(5, "MPI_Bcast")

    result = run_world(1, body)
    assert isinstance(result.error, ConcurrentCollectiveError)


def test_exit_never_goes_negative():
    def body(proc):
        checks = CheckState(proc, {})
        checks.exit(3)
        checks.enter(3, "x")
        checks.enter(3, "x")  # would be 2 if exit had gone to -1

    result = run_world(1, body)
    assert isinstance(result.error, ThreadContextError)


def test_counters_are_per_group():
    def body(proc):
        checks = CheckState(proc, {1: "multithread", 2: "multithread"})
        checks.enter(1, "a")
        checks.enter(2, "b")  # different group: no overlap
        checks.exit(2)
        checks.exit(1)

    result = run_world(1, body)
    assert result.ok


def test_cc_counts_accumulate_in_run_result():
    def body(proc):
        checks = CheckState(proc)
        checks.cc(1, "MPI_Barrier", 3)
        checks.enter(9, "x")
        checks.exit(9)

    result = run_world(2, body)
    assert result.cc_calls == 2      # both ranks
    assert result.enter_checks == 2


def test_world_rejects_zero_ranks():
    with pytest.raises(ValueError):
        MpiWorld(0)
