"""Unit tests for the interprocedural layer: call-graph construction,
SCC condensation, context-word propagation (canonicalization, chains,
saturation) and collective summaries."""

import pytest

from repro.core.callgraph import (
    ALWAYS,
    CONDITIONAL,
    MAX_CONTEXTS,
    NEVER,
    build_call_graph,
    callgraph_to_dot,
    canonical_word,
    collective_summaries,
    propagate_contexts,
)
from repro.minilang.parser import parse_program
from repro.parallelism import EMPTY, format_word, parse_word
from repro.parallelism.word import B, P, S


def _graph(src):
    program = parse_program(src, "t")
    return program, build_call_graph(program)


# -- call graph ---------------------------------------------------------------------


def test_edges_include_statement_and_expression_calls():
    program, graph = _graph("""
int helper(int v) {
    return v;
}

void runner() {
    helper(1);
}

void main() {
    int x = 0;
    runner();
    x = helper(x);
    if (helper(x) > 0) {
        x = 1;
    }
}
""")
    kinds = [(e.callee, e.expression) for e in graph.edges["main"]]
    assert kinds == [("runner", False), ("helper", True), ("helper", True)]
    assert [(e.callee, e.expression) for e in graph.edges["runner"]] == [
        ("helper", False)]
    assert {e.caller for e in graph.callers["helper"]} == {"runner", "main"}


def test_entries_and_main_always_entry():
    _program, graph = _graph("""
void helper() {
    int x = 1;
}

void main() {
    helper();
    main();
}
""")
    # main is called (by itself) but must stay an entry.
    assert graph.entries == ["main"]
    assert "main" in graph.recursive


def test_scc_condensation_orders_callees_first():
    _program, graph = _graph("""
void a() {
    b();
}

void b() {
    a();
    c();
}

void c() {
    int x = 1;
}

void main() {
    a();
}
""")
    assert ("a", "b") in graph.sccs
    assert graph.recursive == frozenset({"a", "b"})
    # Reverse topological: c before the {a,b} SCC, which comes before main.
    pos = {scc: i for i, scc in enumerate(graph.sccs)}
    assert pos[("c",)] < pos[("a", "b")] < pos[("main",)]


# -- canonicalization ---------------------------------------------------------------


def test_canonical_word_renumbers_in_first_occurrence_order():
    word = (P(137), B(), S(42, "single"), P(137))
    assert canonical_word(word) == (P(-1), B(), S(-2, "single"), P(-1))
    assert canonical_word(canonical_word(word)) == canonical_word(word)
    assert canonical_word(EMPTY) == EMPTY


def test_canonical_ids_never_collide_with_ast_uids():
    # AST uids are positive; canonical context ids are negative.
    word = canonical_word(parse_word("P1 S2 B"))
    assert all(t.region_id < 0 for t in word if not isinstance(t, B))


# -- context propagation ------------------------------------------------------------


def test_contexts_flow_through_parallel_and_single():
    program, graph = _graph("""
void leaf() {
    int x = 1;
}

void mid() {
    leaf();
}

void main() {
    #pragma omp parallel
    {
        #pragma omp single
        {
            mid();
        }
    }
}
""")
    cm = propagate_contexts(program, graph)
    assert [format_word(w) for w in cm.contexts["main"]] == ["ε"]
    assert [format_word(w) for w in cm.contexts["mid"]] == ["P-1 S-2"]
    assert [format_word(w) for w in cm.contexts["leaf"]] == ["P-1 S-2"]
    assert cm.chains[("leaf", cm.contexts["leaf"][0])] == ("main", "mid", "leaf")


def test_multiple_contexts_join_and_sort_empty_first():
    program, graph = _graph("""
void helper() {
    int x = 1;
}

void main() {
    helper();
    #pragma omp parallel
    {
        helper();
    }
}
""")
    cm = propagate_contexts(program, graph)
    assert [format_word(w) for w in cm.contexts["helper"]] == ["ε", "P-1"]


def test_entry_context_seeds_entries():
    program, graph = _graph("""
void helper() {
    int x = 1;
}

void main() {
    helper();
}
""")
    cm = propagate_contexts(program, graph, entry_context=parse_word("P1"))
    assert [format_word(w) for w in cm.contexts["main"]] == ["P-1"]
    assert [format_word(w) for w in cm.contexts["helper"]] == ["P-1"]


def test_seeds_add_extra_contexts():
    program, graph = _graph("""
void helper() {
    int x = 1;
}

void main() {
    helper();
}
""")
    cm = propagate_contexts(program, graph,
                            seeds={"helper": parse_word("P1 S2")})
    assert [format_word(w) for w in cm.contexts["helper"]] == ["ε", "P-1 S-2"]


def test_unreached_cycle_falls_back_to_entry_context():
    program, graph = _graph("""
void ping() {
    pong();
}

void pong() {
    ping();
}

void main() {
    int x = 1;
}
""")
    cm = propagate_contexts(program, graph)
    assert cm.contexts["ping"] == (EMPTY,)
    assert cm.contexts["pong"] == (EMPTY,)


def test_recursion_converges_without_saturation():
    program, graph = _graph("""
int spin(int n) {
    if (n > 0) {
        n = spin(n - 1);
    }
    return n;
}

void main() {
    #pragma omp parallel
    {
        int y = spin(3);
    }
}
""")
    cm = propagate_contexts(program, graph)
    assert not cm.saturated
    assert [format_word(w) for w in cm.contexts["spin"]] == ["P-1"]


def test_degenerate_barrier_recursion_saturates_deterministically():
    # Each recursion level appends one B to the context: without the bound
    # the context set would grow forever.
    program, graph = _graph("""
void churn() {
    #pragma omp barrier
    churn();
}

void main() {
    #pragma omp parallel
    {
        churn();
    }
}
""")
    cm1 = propagate_contexts(program, graph)
    cm2 = propagate_contexts(program, graph)
    assert "churn" in cm1.saturated
    assert len(cm1.contexts["churn"]) <= MAX_CONTEXTS
    assert cm1.contexts == cm2.contexts  # deterministic under the cap


# -- collective summaries -----------------------------------------------------------


def test_summaries_direct_and_transitive():
    program, graph = _graph("""
void always() {
    MPI_Barrier();
}

void cond() {
    int r = MPI_Comm_rank();
    if (r == 0) {
        MPI_Barrier();
    }
}

void through_expr() {
    int x = 0;
    x = deep(x);
}

int deep(int v) {
    MPI_Barrier();
    return v;
}

void main() {
    always();
    cond();
    through_expr();
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["always"].classify("MPI_Barrier") == ALWAYS
    assert summaries["cond"].classify("MPI_Barrier") == CONDITIONAL
    assert summaries["deep"].classify("MPI_Barrier") == ALWAYS
    # Expression-level call still counts for the summary.
    assert summaries["through_expr"].classify("MPI_Barrier") == ALWAYS
    assert summaries["main"].classify("MPI_Barrier") == ALWAYS
    assert summaries["main"].classify("MPI_Allreduce") == NEVER


def test_summaries_loops_and_early_exit_demote_to_conditional():
    program, graph = _graph("""
void loopy(int n) {
    for (int i = 0; i < n; i += 1) {
        MPI_Barrier();
    }
}

int early(int n) {
    if (n == 0) {
        return 0;
    }
    MPI_Barrier();
    return n;
}

void main() {
    loopy(2);
    int x = early(1);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["loopy"].classify("MPI_Barrier") == CONDITIONAL
    assert summaries["early"].classify("MPI_Barrier") == CONDITIONAL


def test_summaries_if_else_must_intersection():
    program, graph = _graph("""
void both(int r) {
    float a = 1.0;
    float b = 0.0;
    if (r == 0) {
        MPI_Barrier();
        MPI_Allreduce(a, b, "sum");
    }
    else {
        MPI_Barrier();
    }
}

void main() {
    both(0);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["both"].classify("MPI_Barrier") == ALWAYS
    assert summaries["both"].classify("MPI_Allreduce") == CONDITIONAL


def test_summaries_recursive_fixpoint_is_sound():
    program, graph = _graph("""
int spin(int n) {
    if (n > 0) {
        n = spin(n - 1);
    }
    MPI_Barrier();
    return n;
}

void main() {
    int x = spin(2);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["spin"].classify("MPI_Barrier") == ALWAYS
    assert summaries["main"].classify("MPI_Barrier") == ALWAYS


def test_summaries_omp_regions_count_once_per_process():
    program, graph = _graph("""
void regions() {
    float a = 1.0;
    float b = 0.0;
    #pragma omp parallel
    {
        #pragma omp single
        {
            MPI_Barrier();
        }
        #pragma omp task
        {
            MPI_Allreduce(a, b, "sum");
        }
    }
}

void main() {
    regions();
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["regions"].classify("MPI_Barrier") == ALWAYS
    # Tasks are deferred: may, never must.
    assert summaries["regions"].classify("MPI_Allreduce") == CONDITIONAL


# -- CFG post-dominance must side ---------------------------------------------------


def test_must_survives_early_return():
    """The ROADMAP open item: a collective executed on every path is
    ``always`` even when one path leaves through an early ``return`` — the
    set of barrier blocks collectively post-dominates the entry, which the
    structural accumulate-until-exit rule cannot see."""
    program, graph = _graph("""
int sync_or_bail(int v) {
    if (v > 100) {
        MPI_Barrier();
        return 100;
    }
    MPI_Barrier();
    return v;
}

void main() {
    int x = 1;
    x = sync_or_bail(x);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["sync_or_bail"].classify("MPI_Barrier") == ALWAYS
    # ... and the upgrade propagates to the caller through the fixpoint.
    assert summaries["main"].classify("MPI_Barrier") == ALWAYS


def test_must_gallery_case_classifies_always():
    """The seeded gallery case is the living proof of the post-dominance
    formulation: statically flagged (paper's branch-duplication class),
    dynamically clean, and summarized MPI_Barrier [always]."""
    from repro.bench.errors_gallery import CASES

    case = CASES["early_return_always_barrier"]
    program = parse_program(case.source, case.name)
    summaries = collective_summaries(program)
    assert summaries["sync_or_bail"].classify("MPI_Barrier") == ALWAYS


def test_must_branch_duplicated_collective_is_always():
    program, graph = _graph("""
void diamond(int r) {
    if (r == 0) {
        MPI_Barrier();
    }
    else {
        MPI_Barrier();
    }
    if (r == 1) {
        return;
    }
    r = r + 1;
}

void main() {
    diamond(0);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["diamond"].classify("MPI_Barrier") == ALWAYS


def test_must_cfg_view_stays_sound_on_skippable_paths():
    """Shapes where some entry→exit path genuinely avoids the collective
    must stay conditional under the CFG view too."""
    program, graph = _graph("""
void loop_only(int n) {
    while (n > 0) {
        MPI_Barrier();
        n = n - 1;
    }
}

int bail_before(int n) {
    if (n == 0) {
        return 0;
    }
    MPI_Barrier();
    return n;
}

void dead_code(int n) {
    return;
    MPI_Barrier();
}

void main() {
    loop_only(2);
    int x = bail_before(1);
    dead_code(0);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["loop_only"].classify("MPI_Barrier") == CONDITIONAL
    assert summaries["bail_before"].classify("MPI_Barrier") == CONDITIONAL
    # An unreachable collective contributes no must event (its block is
    # pruned from the CFG) — it stays in the exact may set only.
    assert summaries["dead_code"].classify("MPI_Barrier") == CONDITIONAL


def test_must_through_always_callee_on_every_path():
    """Blocks calling an ALWAYS-callee count as event blocks for the cut:
    a caller reaching the collective only through helpers on both branches
    is still ``always``."""
    program, graph = _graph("""
int left(int v) {
    MPI_Barrier();
    return v;
}

int right(int v) {
    MPI_Barrier();
    return v + 1;
}

void caller(int r) {
    int x = 0;
    if (r == 0) {
        x = left(x);
        return;
    }
    x = right(x);
}

void main() {
    caller(0);
}
""")
    summaries = collective_summaries(program, graph)
    assert summaries["left"].classify("MPI_Barrier") == ALWAYS
    assert summaries["right"].classify("MPI_Barrier") == ALWAYS
    assert summaries["caller"].classify("MPI_Barrier") == ALWAYS


# -- DOT export ---------------------------------------------------------------------


def test_callgraph_dot_shape():
    program, graph = _graph("""
int bump(int v) {
    MPI_Barrier();
    return v + 1;
}

void main() {
    int x = 0;
    #pragma omp parallel
    {
        x = bump(x);
    }
}
""")
    cm = propagate_contexts(program, graph)
    summaries = collective_summaries(program, graph)
    dot = callgraph_to_dot(graph, cm, summaries)
    assert dot.startswith('digraph "callgraph"')
    assert '"main" -> "bump" [style=dashed];' in dot  # expression call
    assert "fillcolor=gold" in dot  # always-collective node
    assert "ctx: P-1" in dot
