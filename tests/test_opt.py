"""Middle-end tests: constant folding, liveness, available expressions, TAC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg import build_cfg
from repro.minilang import ast_nodes as A
from repro.minilang.parser import parse_function, parse_program
from repro.minilang.pretty import pretty
from repro.opt import (
    available_expressions,
    expr_key,
    fold_expr,
    fold_program,
    liveness,
    lower_function,
    lower_program,
    run_middle_end,
)
from repro.runtime import run_program


def parse_expr(text):
    func = parse_function(f"void f() {{ x = {text}; }}")
    return func.body.stmts[0].value


# -- constant folding -----------------------------------------------------------


@pytest.mark.parametrize("src,expected", [
    ("1 + 2 * 3", 7),
    ("(4 - 1) * (2 + 2)", 12),
    ("10 / 4", 2),
    ("7 % 3", 1),
    ("1 < 2", True),
    ("3 == 3", True),
    ("true && false", False),
    ("true || false", True),
])
def test_fold_constants(src, expected):
    folded = fold_expr(parse_expr(src))
    assert isinstance(folded, (A.IntLit, A.BoolLit))
    assert folded.value == expected


@pytest.mark.parametrize("src,expected_text", [
    ("x + 0", "x"),
    ("0 + x", "x"),
    ("x - 0", "x"),
    ("x * 1", "x"),
    ("1 * x", "x"),
    ("x / 1", "x"),
])
def test_algebraic_identities(src, expected_text):
    folded = fold_expr(parse_expr(src))
    assert pretty(folded) if False else True
    from repro.minilang.pretty import emit_expr
    assert emit_expr(folded) == expected_text


def test_division_by_zero_not_folded():
    folded = fold_expr(parse_expr("1 / 0"))
    assert isinstance(folded, A.BinOp)  # left to the runtime


def test_double_negation_removed():
    folded = fold_expr(parse_expr("-(-y)"))
    assert isinstance(folded, A.VarRef)


def test_fold_program_preserves_semantics():
    src = """
void main() {
    int x = 2 + 3;
    int y = x * (1 + 1);
    if (1 < 2) { y += 0 + 1; }
    print(x, y);
}
"""
    prog = parse_program(src)
    folded = fold_program(prog)
    raw = run_program(prog, nprocs=1, timeout=5.0)
    opt = run_program(folded, nprocs=1, timeout=5.0)
    assert raw.ok and opt.ok
    assert raw.outputs == opt.outputs


def test_fold_program_folds_branch_conditions():
    prog = parse_program("void f() { if (1 < 2) { print(1); } }")
    folded = fold_program(prog)
    cond = folded.funcs[0].body.stmts[0].cond
    assert isinstance(cond, A.BoolLit) and cond.value is True


def test_fold_inside_omp_constructs():
    prog = parse_program("""
void f() {
    #pragma omp parallel num_threads(2 + 2)
    {
        #pragma omp single
        { print(3 * 3); }
    }
}
""")
    folded = fold_program(prog)
    par = folded.funcs[0].body.stmts[0]
    assert par.num_threads.value == 4


# -- liveness ----------------------------------------------------------------------


def test_liveness_simple_chain():
    func = parse_function("""
void f(int a) {
    int b = a + 1;
    int c = b * 2;
    print(c);
}
""")
    cfg, _ = build_cfg(func, set())
    live = liveness(cfg)
    # 'a' is live into the first real block's predecessor chain.
    entry_succs = cfg.successors(cfg.entry_id)
    assert "a" in live.live_in[entry_succs[0]] or "a" in live.live_in[cfg.entry_id]


def test_liveness_through_branches():
    func = parse_function("""
void f(int a, int b) {
    int x = 0;
    if (a > 0) { x = a; } else { x = b; }
    print(x);
}
""")
    cfg, _ = build_cfg(func, set())
    live = liveness(cfg)
    # At the condition block both a and b must be live.
    (cond,) = [blk for blk in cfg.blocks.values() if blk.cond is not None]
    assert {"a", "b"} <= live.live_in[cond.id]


def test_dead_store_detected():
    func = parse_function("""
void f() {
    int x = 1;
    x = 2;
    print(x);
}
""")
    cfg, _ = build_cfg(func, set())
    dead = liveness(cfg).dead_stores(cfg)
    assert any(var == "x" for _, var in dead)


def test_loop_variable_stays_live():
    func = parse_function("""
void f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i += 1) { acc += i; }
    print(acc);
}
""")
    cfg, _ = build_cfg(func, set())
    live = liveness(cfg)
    dead = [v for _, v in live.dead_stores(cfg)]
    assert "acc" not in dead
    assert "i" not in dead


# -- available expressions -----------------------------------------------------------


def test_expr_key_canonicalizes_commutative():
    e1 = parse_expr("a + b")
    e2 = parse_expr("b + a")
    assert expr_key(e1) == expr_key(e2)
    e3 = parse_expr("a - b")
    e4 = parse_expr("b - a")
    assert expr_key(e3) != expr_key(e4)


def test_expr_key_impure_is_none():
    assert expr_key(parse_expr("f(x) + 1")) is None


def test_redundant_expression_reported():
    func = parse_function("""
void f(int a, int b) {
    int x = a + b;
    int y = a + b;
    print(x, y);
}
""")
    cfg, _ = build_cfg(func, set())
    avail = available_expressions(cfg)
    assert any("a" in key and "b" in key for _, key in avail.redundant)


def test_redefinition_kills_availability():
    func = parse_function("""
void f(int a, int b) {
    int x = a + b;
    a = 5;
    int y = a + b;
    print(x, y);
}
""")
    cfg, _ = build_cfg(func, set())
    avail = available_expressions(cfg)
    keys = [key for _, key in avail.redundant if "a" in key and "b" in key]
    assert keys == []


# -- TAC lowering -----------------------------------------------------------------------


def test_tac_straight_line():
    func = parse_function("void f() { int x = 1 + 2; }")
    tac = lower_function(func)
    opcodes = [i.op for i in tac.instrs]
    assert "bin+" in opcodes
    assert opcodes[-1] == "ret"


def test_tac_if_produces_labels_and_jumps():
    func = parse_function("void f(int a) { if (a > 0) { a = 1; } else { a = 2; } }")
    tac = lower_function(func)
    opcodes = [i.op for i in tac.instrs]
    assert "cjump_false" in opcodes
    assert opcodes.count("label") == 2
    assert "jump" in opcodes


def test_tac_loop_structure():
    func = parse_function("void f() { for (int i = 0; i < 3; i += 1) { print(i); } }")
    tac = lower_function(func)
    opcodes = [i.op for i in tac.instrs]
    assert opcodes.count("label") == 3  # head, step, end
    assert "call" in opcodes


def test_tac_omp_markers_balanced():
    func = parse_function("""
void f() {
    #pragma omp parallel
    {
        #pragma omp single
        { MPI_Barrier(); }
        #pragma omp barrier
    }
}
""")
    tac = lower_function(func)
    opcodes = [i.op for i in tac.instrs]
    assert opcodes.count("omp_parallel_begin") == opcodes.count("omp_parallel_end") == 1
    assert opcodes.count("omp_single_begin") == opcodes.count("omp_single_end") == 1
    assert "omp_barrier" in opcodes


def test_tac_array_load_store():
    func = parse_function("void f() { int a[4]; a[1] = a[0] + 1; }")
    tac = lower_function(func)
    opcodes = [i.op for i in tac.instrs]
    assert "alloca" in opcodes and "load" in opcodes and "store" in opcodes


def test_tac_render_is_stable():
    func = parse_function("void f() { print(1); }")
    text = str(lower_function(func))
    assert text.startswith("func f(")
    assert "call" in text


# -- middle end driver ----------------------------------------------------------------


def test_run_middle_end_stats():
    prog = parse_program("""
void helper(int n) { for (int i = 0; i < n; i += 1) { print(i); } }
void main() { helper(3); }
""")
    result = run_middle_end(prog)
    assert result.stats["functions"] == 2
    assert result.stats["loops"] == 1
    assert result.stats["tac_instrs"] > 0
    assert set(result.cfgs) == {"helper", "main"}


@given(st.integers(0, 50), st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_fold_matches_interpreter_on_random_arith(a, b):
    src = f"void main() {{ print({a} + {b} * 2 - {a} / {b}); }}"
    prog = parse_program(src)
    folded = fold_program(prog)
    stmt = folded.funcs[0].body.stmts[0]
    assert isinstance(stmt.expr.args[0], A.IntLit)
    raw = run_program(prog, nprocs=1, timeout=5.0)
    assert raw.outputs[0][0] == str(stmt.expr.args[0].value)
