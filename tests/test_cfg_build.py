"""CFG construction tests: block kinds, implicit barriers, edge structure."""

from repro.cfg import BlockKind, build_cfg, to_dot
from repro.minilang.parser import parse_function


def cfg_of(src, user_funcs=None):
    func = parse_function(src)
    cfg, ast_block = build_cfg(func, user_funcs or set())
    assert cfg.validate() == []
    return cfg


def kinds(cfg):
    return [b.kind for b in cfg.blocks.values()]


def test_straight_line_single_block():
    cfg = cfg_of("void f() { int x = 1; x += 2; print(x); }")
    normals = cfg.blocks_of_kind(BlockKind.NORMAL)
    assert len(normals) == 1
    assert len(normals[0].stmts) == 3


def test_entry_and_exit_unique():
    cfg = cfg_of("void f() { }")
    assert len(cfg.blocks_of_kind(BlockKind.ENTRY)) == 1
    assert len(cfg.blocks_of_kind(BlockKind.EXIT)) == 1
    assert list(cfg.successors(cfg.exit_id)) == []


def test_collective_gets_own_block():
    cfg = cfg_of("void f() { int x = 1; MPI_Barrier(); x = 2; }")
    colls = cfg.collective_blocks()
    assert len(colls) == 1
    assert colls[0].collective == "MPI_Barrier"
    # The surrounding simple statements are in different blocks.
    assert all(b.id != colls[0].id for b in cfg.blocks_of_kind(BlockKind.NORMAL)
               if b.stmts)


def test_two_collectives_two_blocks():
    cfg = cfg_of("void f() { MPI_Barrier(); MPI_Barrier(); }")
    assert len(cfg.collective_blocks()) == 2


def test_user_call_block():
    cfg = cfg_of("void f() { helper(); }", user_funcs={"helper"})
    calls = cfg.blocks_of_kind(BlockKind.CALL)
    assert len(calls) == 1
    assert calls[0].callee == "helper"


def test_if_creates_condition_with_two_successors():
    cfg = cfg_of("void f(int x) { if (x > 0) { x = 1; } x = 2; }")
    (cond,) = cfg.blocks_of_kind(BlockKind.CONDITION)
    assert len(cfg.successors(cond.id)) == 2


def test_if_else_joins():
    cfg = cfg_of("void f(int x) { if (x > 0) { x = 1; } else { x = 2; } print(x); }")
    (cond,) = cfg.blocks_of_kind(BlockKind.CONDITION)
    s1, s2 = cfg.successors(cond.id)
    # Both branches eventually reach a common join that reaches exit.
    assert cfg.can_reach_exit() >= {s1, s2}


def test_while_loop_back_edge():
    cfg = cfg_of("void f(int n) { while (n > 0) { n -= 1; } }")
    (cond,) = cfg.blocks_of_kind(BlockKind.CONDITION)
    # Some block loops back to the condition.
    assert cond.id in {s for b in cfg.blocks for s in cfg.successors(b)}
    preds = cfg.predecessors(cond.id)
    assert len(preds) == 2  # entry path + back edge


def test_for_loop_structure():
    cfg = cfg_of("void f() { for (int i = 0; i < 4; i += 1) { print(i); } }")
    (cond,) = cfg.blocks_of_kind(BlockKind.CONDITION)
    assert len(cfg.successors(cond.id)) == 2


def test_break_exits_loop():
    cfg = cfg_of("void f() { while (true) { break; } print(1); }")
    # The loop must not strand the tail: print reachable from entry.
    reachable = cfg.reachable_from_entry()
    tail = [b for b in cfg.blocks.values() if b.stmts and b.kind is BlockKind.NORMAL]
    assert any(b.id in reachable for b in tail)


def test_return_connects_to_exit():
    cfg = cfg_of("int f(int x) { if (x > 0) { return 1; } return 0; }")
    preds = cfg.predecessors(cfg.exit_id)
    assert len(preds) >= 2


def test_unreachable_code_removed():
    cfg = cfg_of("int f() { return 1; print(2); }")
    for block in cfg.blocks.values():
        for stmt in block.stmts:
            pass  # all remaining blocks are reachable
    assert cfg.reachable_from_entry() | {cfg.exit_id} == set(cfg.blocks)


def test_infinite_loop_gets_virtual_exit_edge():
    cfg = cfg_of("void f() { for (;;) { print(1); } }")
    assert cfg.virtual_edges  # exit made reachable
    assert set(cfg.blocks) == cfg.can_reach_exit()


# -- OpenMP blocks ------------------------------------------------------------


def test_parallel_region_blocks_and_join_barrier():
    cfg = cfg_of("void f() { \n#pragma omp parallel\n{ print(1); } }")
    assert len(cfg.blocks_of_kind(BlockKind.OMP_PARALLEL)) == 1
    ends = cfg.blocks_of_kind(BlockKind.OMP_END)
    assert len(ends) == 1
    bars = cfg.blocks_of_kind(BlockKind.OMP_BARRIER)
    assert len(bars) == 1 and bars[0].implicit


def test_single_nowait_has_no_implicit_barrier():
    cfg = cfg_of("void f() { \n#pragma omp parallel\n{\n#pragma omp single nowait\n{ print(1); } } }")
    bars = cfg.blocks_of_kind(BlockKind.OMP_BARRIER)
    # only the parallel join barrier remains
    assert len(bars) == 1


def test_single_default_has_implicit_barrier():
    cfg = cfg_of("void f() { \n#pragma omp parallel\n{\n#pragma omp single\n{ print(1); } } }")
    bars = cfg.blocks_of_kind(BlockKind.OMP_BARRIER)
    assert len(bars) == 2  # single end + parallel join


def test_explicit_barrier_block():
    cfg = cfg_of("void f() { \n#pragma omp parallel\n{\n#pragma omp barrier\n} }")
    explicit = [b for b in cfg.blocks_of_kind(BlockKind.OMP_BARRIER) if not b.implicit]
    assert len(explicit) == 1


def test_omp_for_blocks():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp for
        for (int i = 0; i < 4; i += 1) { print(i); }
    }
}
"""
    cfg = cfg_of(src)
    assert len(cfg.blocks_of_kind(BlockKind.OMP_FOR)) == 1
    assert len(cfg.blocks_of_kind(BlockKind.OMP_BARRIER)) == 2  # for end + join


def test_sections_chained_sequentially():
    src = """
void f() {
    #pragma omp parallel
    {
        #pragma omp sections
        {
            #pragma omp section
            { MPI_Barrier(); }
            #pragma omp section
            { print(2); }
        }
    }
}
"""
    cfg = cfg_of(src)
    secs = cfg.blocks_of_kind(BlockKind.OMP_SECTION)
    assert len(secs) == 2
    # Sequential chaining: one section's region reaches the other.
    first, second = sorted(secs, key=lambda b: b.id)
    reach_from_first = set(cfg.reverse_postorder(first.id))
    assert second.id in reach_from_first


def test_ast_block_maps_collective_stmt():
    func = parse_function("void f() { MPI_Barrier(); }")
    cfg, ast_block = build_cfg(func, set())
    (coll,) = cfg.collective_blocks()
    stmt = func.body.stmts[0]
    assert ast_block[stmt.uid] == coll.id


def test_dot_export_contains_all_blocks():
    cfg = cfg_of("void f(int x) { if (x > 0) { MPI_Barrier(); } }")
    dot = to_dot(cfg)
    for bid in cfg.blocks:
        assert f"n{bid} " in dot or f"n{bid} ->" in dot or f"n{bid} [" in dot
    assert dot.startswith("digraph")


def test_validate_reports_malformed_collective_block():
    """A COLLECTIVE block must contain exactly one collective statement."""
    from repro.cfg import CFG
    from repro.minilang import ast_nodes as A

    cfg = CFG("bad")
    entry = cfg.new_block(BlockKind.ENTRY)
    bad = cfg.new_block(BlockKind.COLLECTIVE, collective="MPI_Barrier")
    exit_ = cfg.new_block(BlockKind.EXIT)
    cfg.entry_id, cfg.exit_id = entry.id, exit_.id
    cfg.add_edge(entry.id, bad.id)
    cfg.add_edge(bad.id, exit_.id)

    # Empty collective block: 0 collective statements.
    problems = cfg.validate()
    assert any("contains 0 collective statements" in p for p in problems)

    # Two collective calls crammed into one block: also malformed.
    call = lambda: A.ExprStmt(expr=A.Call(name="MPI_Barrier", args=[]))
    bad.stmts.extend([call(), call()])
    problems = cfg.validate()
    assert any("contains 2 collective statements" in p for p in problems)

    # Non-collective filler does not count toward the collective tally.
    bad.stmts[:] = [call(), A.ExprStmt(expr=A.Call(name="print", args=[]))]
    assert not any("collective statements" in p for p in cfg.validate())

    # A missing collective name is still reported separately.
    bad.collective = None
    assert any("without collective name" in p for p in cfg.validate())


def test_well_formed_collective_blocks_validate_clean():
    cfg = cfg_of("void f() { MPI_Barrier(); MPI_Barrier(); }")
    assert len(cfg.collective_blocks()) == 2
    assert cfg.validate() == []
