"""Interpreter tests: sequential semantics, OpenMP execution, MPI wiring."""

import pytest

from tests.conftest import run_source


def outputs(src, nprocs=1, num_threads=2, **kw):
    result = run_source(src, nprocs=nprocs, num_threads=num_threads, **kw)
    assert result.ok, result.error
    return result


def test_arithmetic_and_print():
    r = outputs("""
void main() {
    int x = 2 + 3 * 4;
    float y = 10.0 / 4.0;
    print(x, y, x % 5, -x);
}
""")
    assert r.outputs[0] == ["14 2.5 4 -14"]


def test_c_style_integer_division():
    r = outputs("void main() { print(7 / 2, -7 / 2, 7 % 3, -7 % 3); }")
    assert r.outputs[0] == ["3 -3 1 -1"]


def test_control_flow_loops():
    r = outputs("""
void main() {
    int acc = 0;
    for (int i = 0; i < 5; i += 1) {
        if (i % 2 == 0) { acc += i; } else { continue; }
        if (acc > 5) { break; }
    }
    print(acc);
}
""")
    assert r.outputs[0] == ["6"]


def test_while_and_compound_assign():
    r = outputs("""
void main() {
    int x = 1;
    while (x < 100) { x *= 3; }
    print(x);
}
""")
    assert r.outputs[0] == ["243"]


def test_arrays():
    r = outputs("""
void main() {
    int a[4];
    for (int i = 0; i < 4; i += 1) { a[i] = i * i; }
    a[2] += 10;
    print(a[0], a[1], a[2], a[3]);
}
""")
    assert r.outputs[0] == ["0 1 14 9"]


def test_array_out_of_bounds_reported():
    result = run_source("void main() { int a[2]; a[5] = 1; }", nprocs=1)
    assert result.error is not None
    assert "out of bounds" in str(result.error)


def test_user_function_calls_and_recursion():
    r = outputs("""
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(10)); }
""")
    assert r.outputs[0] == ["55"]


def test_builtins():
    r = outputs("void main() { print(abs(-3), min(2, 5), max(2, 5), mod(7, 4)); }")
    assert r.outputs[0] == ["3 2 5 3"]


def test_division_by_zero_reported():
    result = run_source("void main() { int x = 1 / 0; }", nprocs=1)
    assert result.error is not None
    assert "division by zero" in str(result.error)


# -- OpenMP execution ---------------------------------------------------------------


def test_parallel_region_spawns_threads():
    r = outputs("""
void main() {
    int count = 0;
    #pragma omp parallel num_threads(4)
    {
        #pragma omp critical
        { count += 1; }
    }
    print(count);
}
""")
    assert r.outputs[0] == ["4"]


def test_omp_get_thread_num_and_num_threads():
    r = outputs("""
void main() {
    int seen[4];
    #pragma omp parallel num_threads(4)
    {
        int tid = omp_get_thread_num();
        seen[tid] = omp_get_num_threads();
    }
    print(seen[0], seen[1], seen[2], seen[3]);
}
""")
    assert r.outputs[0] == ["4 4 4 4"]


def test_single_executes_once():
    r = outputs("""
void main() {
    int count = 0;
    #pragma omp parallel num_threads(4)
    {
        #pragma omp single
        { count += 1; }
        #pragma omp single
        { count += 10; }
    }
    print(count);
}
""")
    assert r.outputs[0] == ["11"]


def test_master_only_tid0():
    r = outputs("""
void main() {
    int val = -1;
    #pragma omp parallel num_threads(3)
    {
        #pragma omp master
        { val = omp_get_thread_num(); }
    }
    print(val);
}
""")
    assert r.outputs[0] == ["0"]


def test_omp_for_covers_all_iterations():
    r = outputs("""
void main() {
    int hits[8];
    #pragma omp parallel num_threads(3)
    {
        #pragma omp for
        for (int i = 0; i < 8; i += 1) { hits[i] = hits[i] + 1; }
    }
    int total = 0;
    for (int j = 0; j < 8; j += 1) { total += hits[j]; }
    print(total);
}
""")
    assert r.outputs[0] == ["8"]


def test_parallel_for_combined_with_reduction_via_critical():
    r = outputs("""
void main() {
    int acc = 0;
    #pragma omp parallel for num_threads(4)
    for (int i = 0; i < 10; i += 1) {
        #pragma omp critical
        { acc += i; }
    }
    print(acc);
}
""")
    assert r.outputs[0] == ["45"]


def test_sections_each_executed_once():
    r = outputs("""
void main() {
    int a = 0;
    int b = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp sections
        {
            #pragma omp section
            {
                #pragma omp critical
                { a += 1; }
            }
            #pragma omp section
            {
                #pragma omp critical
                { b += 1; }
            }
        }
    }
    print(a, b);
}
""")
    assert r.outputs[0] == ["1 1"]


def test_private_clause_gives_thread_local_copies():
    r = outputs("""
void main() {
    int x = 100;
    #pragma omp parallel num_threads(4) private(x)
    {
        x = omp_get_thread_num();
    }
    print(x);
}
""")
    assert r.outputs[0] == ["100"]  # shared x untouched


def test_nested_parallel_regions_execute():
    r = outputs("""
void main() {
    int count = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp parallel num_threads(2)
        {
            #pragma omp critical
            { count += 1; }
        }
    }
    print(count);
}
""")
    assert r.outputs[0] == ["4"]


def test_task_runs_inline():
    r = outputs("""
void main() {
    int done = 0;
    #pragma omp parallel num_threads(2)
    {
        #pragma omp single
        {
            #pragma omp task
            { done = 1; }
        }
    }
    print(done);
}
""")
    assert r.outputs[0] == ["1"]


# -- MPI from minilang ------------------------------------------------------------------


def test_rank_size_and_bcast():
    r = outputs("""
void main() {
    int rank = MPI_Comm_rank();
    int size = MPI_Comm_size();
    int data = 0;
    if (rank == 0) { data = 42; }
    MPI_Bcast(data, 0);
    print(rank, size, data);
}
""", nprocs=3)
    assert r.outputs[0] == ["0 3 42"]
    assert r.outputs[2] == ["2 3 42"]


def test_allreduce_and_reduce():
    r = outputs("""
void main() {
    int rank = MPI_Comm_rank();
    float mine = rank + 1.0;
    float total = 0.0;
    MPI_Allreduce(mine, total, "sum");
    float best = 0.0;
    MPI_Reduce(mine, best, "max", 0);
    print(total, best);
}
""", nprocs=3)
    assert r.outputs[0] == ["6.0 3.0"]
    assert r.outputs[1] == ["6.0 0.0"]  # non-root keeps initial value


def test_gather_scatter_arrays():
    r = outputs("""
void main() {
    int rank = MPI_Comm_rank();
    int size = MPI_Comm_size();
    int buf[2];
    MPI_Gather(rank * 10, buf, 0);
    int part = -1;
    MPI_Scatter(buf, part, 0);
    print(part);
}
""", nprocs=2)
    assert r.outputs[0] == ["0"]
    assert r.outputs[1] == ["10"]


def test_scan():
    r = outputs("""
void main() {
    int rank = MPI_Comm_rank();
    int acc = 0;
    MPI_Scan(rank + 1, acc, "sum");
    print(acc);
}
""", nprocs=3)
    assert [r.outputs[i][0] for i in range(3)] == ["1", "3", "6"]


def test_sendrecv_ring():
    r = outputs("""
void main() {
    int rank = MPI_Comm_rank();
    int size = MPI_Comm_size();
    int right = mod(rank + 1, size);
    int left = mod(rank - 1 + size, size);
    int got = -1;
    MPI_Sendrecv(rank, right, 5, got, left, 5);
    print(got);
}
""", nprocs=3)
    assert [r.outputs[i][0] for i in range(3)] == ["2", "0", "1"]


def test_collective_inside_single_runs_clean():
    r = outputs("""
void main() {
    float x = 1.0;
    float y = 0.0;
    #pragma omp parallel num_threads(3)
    {
        #pragma omp single
        { MPI_Allreduce(x, y, "sum"); }
    }
    print(y);
}
""", nprocs=2, num_threads=3)
    assert r.outputs[0] == ["2.0"]


def test_work_builtin_is_deterministic():
    r = outputs("void main() { print(work(10) == work(10)); }")
    assert r.outputs[0] == ["True"]
