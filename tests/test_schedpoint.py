"""Threaded-mode SchedPoint behavior: blocked waits are *notified* (on
state change and on abort) instead of busy-polling, with only a coarse
fallback timeout as a safety net."""

import time

from repro.mpi.thread_levels import ThreadLevel
from repro.runtime import MpiWorld, ValidationError
from repro.runtime.simmpi.process import CriticalSection


def test_abort_wakes_a_blocked_collective_promptly():
    """rank 0 blocks in a collective round with a *long* deadline; rank 1
    errors after 0.3 s.  The abort must wake rank 0 by notification — well
    before the 30 s deadline that the old poll loop relied on."""
    def body(proc):
        if proc.rank == 0:
            proc.collective("MPI_Barrier", (), None)
        else:
            time.sleep(0.3)
            raise ValidationError("boom")

    world = MpiWorld(2, timeout=30.0)
    start = time.perf_counter()
    result = world.run(body)
    elapsed = time.perf_counter() - start
    assert result.error is not None and "boom" in str(result.error)
    assert elapsed < 5.0  # notified, not deadline-bound


def test_abort_wakes_a_blocked_recv_promptly():
    def body(proc):
        if proc.rank == 0:
            return proc.recv(1, 5)
        time.sleep(0.3)
        raise ValidationError("p2p abort")

    world = MpiWorld(2, timeout=30.0)
    start = time.perf_counter()
    result = world.run(body)
    assert result.error is not None
    assert time.perf_counter() - start < 5.0


def test_send_wakes_matching_recv():
    def body(proc):
        if proc.rank == 0:
            time.sleep(0.1)
            proc.send(1, 3, "late")
            return None
        return proc.recv(0, 3)

    world = MpiWorld(2, timeout=30.0)
    result = world.run(body)
    assert result.ok
    assert result.returns[1] == "late"


def test_critical_section_is_mutually_exclusive_threaded():
    def body(proc):
        section = proc.critical_lock("c")
        counts = []

        def bump():
            with section:
                current = len(counts)
                time.sleep(0.01)
                counts.append(current)

        import threading
        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return counts

    world = MpiWorld(1, timeout=5.0)
    result = world.run(body)
    assert result.ok
    assert result.returns[0] == [0, 1, 2, 3]  # strictly serialized


def test_critical_lock_returns_same_section_per_name():
    world = MpiWorld(1, thread_level=ThreadLevel.MULTIPLE, timeout=2.0)
    proc = world.procs[0]
    assert proc.critical_lock("a") is proc.critical_lock("a")
    assert proc.critical_lock("a") is not proc.critical_lock("b")
    assert isinstance(proc.critical_lock("a"), CriticalSection)


def test_run_result_carries_engine_history():
    def body(proc):
        proc.collective("MPI_Barrier", (), None)
        proc.collective("MPI_Allreduce", ("sum",), proc.rank)

    world = MpiWorld(2, timeout=5.0)
    result = world.run(body)
    assert [op for op, _ in result.history] == ["MPI_Barrier", "MPI_Allreduce"]
