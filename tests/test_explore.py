"""Schedule-exploration subsystem tests: deterministic cooperative runs,
trace record/replay, virtual-clock deadlock detection, DFS/random
exploration of the seeded interleaving-dependent gallery bugs, trace
minimization, and the ``parcoach explore`` CLI."""

import json

import pytest

from repro import analyze_program, instrument_program, parse_program
from repro.bench.errors_gallery import CASES, schedule_sensitive_cases
from repro.explore import (
    Decision,
    DefaultStrategy,
    ExploreConfig,
    RandomStrategy,
    ScheduleTrace,
    ScriptedStrategy,
    ddmin,
    dfs_prefixes,
    explore_config,
    replay,
    run_scheduled,
    verdict_line,
)
from repro.runtime.errors import CollectiveMismatchError, DeadlockError


def _program(name):
    return parse_program(CASES[name].source, name)


def _instrumented(name):
    analysis = analyze_program(_program(name))
    program, _ = instrument_program(analysis)
    return program, analysis.group_kinds


CFG22 = ExploreConfig(nprocs=2, num_threads=2)


# -- deterministic scheduled execution ---------------------------------------------


def test_scheduled_run_is_deterministic():
    program = _program("concurrent_singles_nowait")
    runs = [run_scheduled(program, CFG22, RandomStrategy(seed=2))
            for _ in range(3)]
    verdicts = {trace.verdict for _, trace in runs}
    choice_seqs = {tuple(trace.choice_names) for _, trace in runs}
    histories = {tuple(result.history) for result, _ in runs}
    assert len(verdicts) == len(choice_seqs) == len(histories) == 1


def test_default_strategy_prefers_running_thread():
    strategy = DefaultStrategy()
    assert strategy.choose(0, ("r0", "r1"), "r1", "x") == "r1"
    assert strategy.choose(0, ("r0", "r1"), None, "x") == "r0"
    assert strategy.choose(0, ("r0", "r1"), "r9", "x") == "r0"


def test_scheduled_clean_program_matches_threaded_semantics():
    program = _program("clean_masteronly")
    result, trace = run_scheduled(program, CFG22)
    assert result.ok, result.error
    assert [op for op, _ in result.history] == [
        "MPI_Bcast", "MPI_Allreduce", "MPI_Barrier", "MPI_Finalize"]
    assert trace.verdict == "clean"


def test_scheduled_run_with_critical_sections():
    src = """
void main() {
    MPI_Init_thread(3);
    int total = 0;
    #pragma omp parallel num_threads(3)
    {
        #pragma omp critical
        {
            total = total + 1;
        }
    }
    print(total);
    MPI_Finalize();
}
"""
    program = parse_program(src, "critical")
    result, _ = run_scheduled(program, ExploreConfig(nprocs=1, num_threads=3))
    assert result.ok, result.error
    assert result.outputs[0] == ["3"]


# -- virtual-clock deadlock detection ----------------------------------------------


def test_structural_deadlock_reported_immediately_with_wait_state():
    src = """
void main() {
    MPI_Init_thread(0);
    int x = 0;
    int rank = MPI_Comm_rank();
    if (rank == 1) {
        MPI_Recv(x, 0, 9);
    }
}
"""
    program = parse_program(src, "recvhang")
    result, _ = run_scheduled(program, CFG22)
    assert isinstance(result.error, DeadlockError)
    assert "every logical thread is blocked" in str(result.error)
    assert "MPI_Recv" in str(result.error)
    # No wall-clock timeout involved: detection is instant.
    assert result.elapsed < 2.0


def test_collective_deadlock_detected_without_wall_timeout():
    program = _program("rank_dependent_bcast")
    result, _ = run_scheduled(program, CFG22)
    assert isinstance(result.error, DeadlockError)
    assert result.elapsed < 2.0


# -- trace record / replay ----------------------------------------------------------


@pytest.mark.parametrize("name", ["concurrent_singles_nowait",
                                  "racy_single_worker_allreduce",
                                  "racy_flag_guarded_barrier",
                                  "sections_two_collectives"])
@pytest.mark.parametrize("seed", [0, 1, 7, 23, 40])
def test_replay_of_recorded_run_reproduces_everything(name, seed):
    """replay(record(run)) gives identical verdicts, engine history and
    outputs — for clean and failing schedules alike."""
    program = _program(name)
    result, trace = run_scheduled(program, CFG22, RandomStrategy(seed))
    replayed, new_trace, divergences = replay(program, trace)
    assert divergences == 0
    assert verdict_line(replayed) == trace.verdict
    assert new_trace.choice_names == trace.choice_names
    assert replayed.history == result.history
    assert replayed.outputs == result.outputs


def test_trace_json_roundtrip(tmp_path):
    program = _program("racy_single_worker_allreduce")
    _, trace = run_scheduled(program, CFG22, RandomStrategy(3))
    path = tmp_path / "t.json"
    trace.save(str(path))
    loaded = ScheduleTrace.load(str(path))
    assert loaded.choice_names == trace.choice_names
    assert loaded.verdict == trace.verdict
    assert loaded.config == trace.config
    assert loaded.mode == "full"
    data = json.loads(path.read_text())
    assert data["version"] == 2
    assert all(set(c) >= {"i", "p", "r", "c"} for c in data["choices"])
    # v2 carries the executed step footprint for every decision.
    assert all("f" in c for c in data["choices"])


def test_trace_rejects_unknown_version():
    with pytest.raises(ValueError):
        ScheduleTrace.from_dict({"version": 99})


# -- exploration strategies ---------------------------------------------------------


def test_dfs_enumerates_distinct_schedules():
    program = _program("racy_single_worker_allreduce")
    seen = set()

    def run_fn(prefix):
        _, trace = run_scheduled(program, CFG22, ScriptedStrategy(prefix))
        seen.add(tuple(trace.choice_names))
        return trace.choices

    runs = 0
    for runs in dfs_prefixes(run_fn, max_runs=40, preemption_bound=1):
        pass
    assert runs == 40
    assert len(seen) == 40  # every executed schedule is distinct


def test_dfs_preemption_bound_zero_explores_forced_branches_only():
    program = _program("racy_single_worker_allreduce")

    def run_fn(prefix):
        _, trace = run_scheduled(program, CFG22, ScriptedStrategy(prefix))
        return trace.choices

    for _ in dfs_prefixes(run_fn, max_runs=500, preemption_bound=0):
        pass
    # With no preemptions allowed, only forced-switch alternatives branch,
    # so the space stays small (but is > 1: blocked-thread choices remain).


def test_random_strategy_respects_preemption_bound():
    strategy = RandomStrategy(seed=1, preemption_bound=0)
    for i in range(20):
        assert strategy.choose(i, ("a", "b", "c"), "b", "x") == "b"


def test_scripted_strategy_counts_divergences():
    strategy = ScriptedStrategy(["ghost", "b"])
    assert strategy.choose(0, ("a", "b"), "a", "x") == "a"  # fallback: current
    assert strategy.divergences == 1
    assert strategy.choose(1, ("a", "b"), "a", "x") == "b"  # scripted hit
    assert strategy.choose(2, ("a", "b"), None, "x") == "a"  # exhausted
    assert strategy.divergences == 1


# -- the acceptance scenario --------------------------------------------------------


def test_explore_finds_interleaving_bug_the_default_schedule_misses():
    """The PR's core claim: a seeded interleaving-dependent mismatch that
    the default schedule misses is found by bounded DFS, and the minimized
    failing trace replays to the same verdict byte for byte."""
    case = CASES["racy_single_worker_allreduce"]
    program = _program(case.name)

    # One default-schedule run misses the bug entirely.
    default_result, _ = run_scheduled(program, CFG22)
    assert default_result.ok

    report = explore_config(program, CFG22, strategy="dfs", runs=100,
                            preemptions=1)
    assert report.failed > 0, "exploration must expose the mismatch"
    assert report.clean > 0, "the bug is schedule-dependent, not constant"
    assert all(f.verdict_class in {e.__name__ for e in case.raw_errors}
               for f in report.failures)

    assert report.minimized is not None
    first = report.failures[0]
    assert len(report.minimized.choices) <= len(first.trace.choices)

    replayed, _, _ = replay(program, report.minimized)
    assert verdict_line(replayed) == report.minimized.verdict  # byte-for-byte


def test_instrumented_cc_fires_on_every_failing_interleaving():
    """Exploration proves the paper's CC check catches the mismatch *before*
    the deadlock on every interleaving, not just the lucky one."""
    program, group_kinds = _instrumented("racy_single_worker_allreduce")
    report = explore_config(program, CFG22, strategy="dfs", runs=100,
                            preemptions=1, group_kinds=group_kinds,
                            minimize=False)
    assert report.failed > 0
    for failure in report.failures:
        assert failure.verdict_class == "CollectiveMismatchError"
        assert failure.detected_by == "CC"


def test_racy_flag_case_is_schedule_sensitive_both_ways():
    case = CASES["racy_flag_guarded_barrier"]
    program = _program(case.name)
    report = explore_config(program, CFG22, strategy="dfs", runs=120,
                            preemptions=2, minimize=False)
    assert report.clean > 0 and report.failed > 0
    allowed = {e.__name__ for e in case.raw_errors}
    assert {f.verdict_class for f in report.failures} <= allowed


def test_random_exploration_finds_the_seeded_bugs_too():
    for name in schedule_sensitive_cases():
        program = _program(name)
        report = explore_config(program, CFG22, strategy="random", runs=30,
                                preemptions=3, seed=0, minimize=False)
        assert report.failed > 0, f"{name}: random sampling found nothing"


# -- minimization -------------------------------------------------------------------


def test_ddmin_shrinks_to_relevant_suffix():
    # The "bug" needs 'x' and 'y' present in order.
    def failing(seq):
        seq = list(seq)
        return "x" in seq and "y" in seq and seq.index("x") < seq.index("y")

    out = ddmin(failing, ["a", "x", "b", "c", "y", "d"])
    assert out == ["x", "y"]


def test_ddmin_empty_when_default_fails():
    assert ddmin(lambda seq: True, ["a", "b", "c"]) == []


# -- CLI ----------------------------------------------------------------------------


def _write_case(tmp_path, name):
    path = tmp_path / f"{name}.mc"
    path.write_text(CASES[name].source)
    return str(path)


def test_cli_explore_summarizes_and_saves_minimized_trace(tmp_path, capsys):
    from repro.cli import main

    source = _write_case(tmp_path, "racy_single_worker_allreduce")
    trace_path = tmp_path / "min.trace.json"
    rc = main(["explore", source, "--strategy", "dfs", "--preemptions", "1",
               "--runs", "60", "--save-trace", str(trace_path)])
    out = capsys.readouterr()
    assert rc == 1
    assert "schedules — clean" in out.out
    assert "minimized:" in out.out
    assert "mismatch in" in out.err
    assert trace_path.exists()

    rc = main(["explore", source, "--replay", str(trace_path)])
    replay_out = capsys.readouterr()
    assert rc == 1
    assert "reproduced" in replay_out.err


def test_cli_explore_clean_program_exits_zero(tmp_path, capsys):
    from repro.cli import main

    source = _write_case(tmp_path, "clean_masteronly")
    rc = main(["explore", source, "--strategy", "dfs", "--runs", "20"])
    out = capsys.readouterr()
    assert rc == 0
    assert "clean in all" in out.err


def test_cli_replay_honors_recorded_instrument_flag(tmp_path, capsys):
    """A trace recorded on the instrumented program replays against the
    instrumented program even without --instrument on the command line."""
    from repro.cli import main

    source = _write_case(tmp_path, "racy_single_worker_allreduce")
    trace_path = tmp_path / "inst.trace.json"
    rc = main(["explore", source, "--instrument", "--strategy", "dfs",
               "--preemptions", "1", "--runs", "60",
               "--save-trace", str(trace_path)])
    capsys.readouterr()
    assert rc == 1 and trace_path.exists()

    rc = main(["explore", source, "--replay", str(trace_path)])
    out = capsys.readouterr()
    assert rc == 1  # reproduced (a diverged replay would exit 2)
    assert "reproduced" in out.err
    assert "CollectiveMismatchError" in out.err


def test_cli_no_minimize_still_saves_failing_trace(tmp_path, capsys):
    from repro.cli import main

    source = _write_case(tmp_path, "racy_single_worker_allreduce")
    trace_path = tmp_path / "full.trace.json"
    rc = main(["explore", source, "--strategy", "dfs", "--preemptions", "1",
               "--runs", "60", "--no-minimize", "--save-trace",
               str(trace_path)])
    out = capsys.readouterr()
    assert rc == 1
    assert trace_path.exists()
    assert "failing trace saved" in out.err

    rc = main(["explore", source, "--replay", str(trace_path)])
    replay_out = capsys.readouterr()
    assert rc == 1
    assert "reproduced" in replay_out.err


def test_random_strategy_preemption_zero_is_enforced_in_runs():
    """preemptions=0 with the random strategy must actually bound voluntary
    switches (regression: 0 used to be treated as unbounded)."""
    program = _program("racy_single_worker_allreduce")
    for seed in range(10):
        _, trace = run_scheduled(
            program, CFG22, RandomStrategy(seed=seed, preemption_bound=0))
        assert not any(d.preemptive for d in trace.choices)


def test_cli_explore_cross_products_configs(tmp_path, capsys):
    from repro.cli import main

    source = _write_case(tmp_path, "clean_masteronly")
    rc = main(["explore", source, "--runs", "5", "-np", "2,3", "-nt", "1,2",
               "--no-minimize"])
    out = capsys.readouterr()
    assert rc == 0
    assert out.out.count("schedules — clean") == 4
