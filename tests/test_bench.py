"""Benchmark-substrate tests: generators produce valid programs, the compile
pipeline measures what it claims, generated programs actually run."""

import pytest

from repro import analyze_program, parse_program
from repro.bench import (
    FIGURE1_BENCHMARKS,
    benchmark_sources,
    compile_source,
    make_bt_mz,
    make_epcc_suite,
    make_hera,
    make_lu_mz,
    make_sp_mz,
    measure_overheads,
    overhead_percent,
)
from repro.bench.pipeline import MODES
from repro.minilang.semantics import check_program


@pytest.mark.parametrize("name", FIGURE1_BENCHMARKS)
def test_benchmark_sources_parse_and_check(name):
    src = benchmark_sources()[name]
    prog = parse_program(src, name)
    errors = [i for i in check_program(prog) if i.severity == "error"]
    assert errors == []
    assert len(src.splitlines()) > 100


@pytest.mark.parametrize("name", FIGURE1_BENCHMARKS)
def test_benchmarks_produce_warnings_and_instrumentation(name):
    result = compile_source(benchmark_sources()[name], "full")
    # Every Figure 1 benchmark draws at least one warning (the verification
    # codegen bars would otherwise be trivially zero).
    assert result.warning_count >= 1
    assert result.report is not None and result.report.total >= 1


def test_generators_are_deterministic():
    assert make_bt_mz() == make_bt_mz()
    assert make_epcc_suite() == make_epcc_suite()
    assert make_hera() == make_hera()


def test_generator_size_scaling():
    small = make_bt_mz(zones=2, steps=2, inner_loops=2, width=2)
    large = make_bt_mz(zones=8, steps=4, inner_loops=6, width=8)
    assert len(large) > len(small)


def test_sp_and_lu_differ_structurally():
    assert make_sp_mz() != make_lu_mz()


def test_compile_modes_and_timings():
    src = make_hera(levels=2, steps=2, physics_modules=2)
    for mode in MODES:
        result = compile_source(src, mode)
        assert result.emitted
        assert result.total_time > 0
        if mode == "base":
            assert result.analysis is None
        else:
            assert result.analysis is not None
        if mode == "full":
            assert "PARCOACH_CC" in result.emitted
        else:
            assert "PARCOACH_CC" not in result.emitted


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        compile_source("void main() { }", "turbo")


def test_overhead_percent_math():
    assert overhead_percent(1.0, 1.05) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        overhead_percent(0.0, 1.0)


def test_measure_overheads_keys():
    ov = measure_overheads(make_lu_mz(zones=2, steps=2), repeats=1)
    assert set(ov) == {"base", "warnings", "full",
                       "warnings_overhead_pct", "full_overhead_pct"}


@pytest.mark.slow
def test_small_nas_program_runs_to_completion():
    from repro.runtime import run_program

    src = make_sp_mz(zones=2, steps=2)
    prog = parse_program(src)
    result = run_program(prog, nprocs=2, num_threads=2, timeout=30.0)
    assert result.ok, result.error
    assert any("verification" in line for line in result.outputs[0])


@pytest.mark.slow
def test_small_hera_program_runs_to_completion():
    from repro.runtime import run_program

    src = make_hera(levels=2, steps=2, n=16, physics_modules=2)
    prog = parse_program(src)
    result = run_program(prog, nprocs=2, num_threads=2, timeout=30.0)
    assert result.ok, result.error
    assert any("final time" in line for line in result.outputs[0])


@pytest.mark.slow
def test_instrumented_hera_runs_clean():
    """The paper's big-application story: warnings exist (conservative), the
    instrumented run validates them all dynamically."""
    from repro import instrument_program
    from repro.runtime import run_program

    src = make_hera(levels=2, steps=2, n=16, physics_modules=2)
    analysis = analyze_program(parse_program(src))
    assert not analysis.verified
    program, _ = instrument_program(analysis)
    result = run_program(program, nprocs=2, num_threads=2,
                         group_kinds=analysis.group_kinds, timeout=30.0)
    assert result.ok, result.error
    assert result.cc_calls > 0
