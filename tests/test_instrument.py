"""Instrumentation-pass tests: CC/ENTER placement and behaviour preservation."""

from repro import analyze_program, instrument_program, parse_program, pretty, run_program
from repro.minilang import ast_nodes as A
from repro.mpi.collectives import RETURN_COLOR, collective_color


def instrumented_of(src, **kw):
    analysis = analyze_program(parse_program(src), **kw)
    program, report = instrument_program(analysis)
    return analysis, program, report


FLAGGED = """
void main() {
    int r = MPI_Comm_rank();
    int x = 1;
    if (r == 0) {
        MPI_Bcast(x, 0);
    }
    MPI_Barrier();
}
"""


def find_calls(program, name):
    return [n for n in program.walk() if isinstance(n, A.Call) and n.name == name]


def test_cc_before_every_collective_of_flagged_function():
    _, program, report = instrumented_of(FLAGGED)
    ccs = find_calls(program, "PARCOACH_CC")
    # Bcast + Barrier + final return
    assert report.cc_calls == 2
    assert report.return_ccs == 1
    colors = [c.args[0].value for c in ccs]
    assert collective_color("MPI_Bcast") in colors
    assert collective_color("MPI_Barrier") in colors
    assert RETURN_COLOR in colors


def test_cc_immediately_precedes_collective():
    _, program, _ = instrumented_of(FLAGGED)
    func = program.func("main")
    then_stmts = [s for s in func.walk() if isinstance(s, A.If)][0].then_body.stmts
    assert isinstance(then_stmts[0], A.ExprStmt)
    assert then_stmts[0].expr.name == "PARCOACH_CC"
    assert then_stmts[1].expr.name == "MPI_Bcast"


def test_cc_before_explicit_return():
    src = """
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { MPI_Barrier(); }
    return;
}
"""
    _, program, report = instrumented_of(src)
    func = program.func("main")
    last_two = func.body.stmts[-2:]
    assert last_two[0].expr.name == "PARCOACH_CC"
    assert last_two[0].expr.args[0].value == RETURN_COLOR
    assert isinstance(last_two[1], A.Return)
    assert report.return_ccs == 1


def test_verified_program_untouched():
    src = "void main() { MPI_Barrier(); MPI_Barrier(); }"
    analysis, program, report = instrumented_of(src)
    assert analysis.verified
    assert report.total == 0
    assert pretty(program) == pretty(analysis.program)


def test_enter_exit_wrap_multithreaded_collective():
    src = """
void main() {
    #pragma omp parallel
    { MPI_Barrier(); }
}
"""
    _, program, report = instrumented_of(src)
    assert report.enter_checks == 1
    body = [s for s in program.walk() if isinstance(s, A.OmpParallel)][0].body.stmts
    names = [s.expr.name for s in body if isinstance(s, A.ExprStmt)]
    assert names == ["PARCOACH_ENTER", "PARCOACH_CC", "MPI_Barrier", "PARCOACH_EXIT"]


def test_concurrent_sites_share_group():
    src = """
void main() {
    float a = 1.0; float b = 0.0; int x = 1;
    #pragma omp parallel
    {
        #pragma omp single nowait
        { MPI_Reduce(a, b, "sum", 0); }
        #pragma omp single
        { MPI_Bcast(x, 0); }
    }
}
"""
    _, program, _ = instrumented_of(src)
    enters = find_calls(program, "PARCOACH_ENTER")
    groups = {c.args[0].value for c in enters}
    assert len(enters) == 2
    assert len(groups) == 1


def test_instrument_all_covers_clean_functions():
    src = "void main() { MPI_Barrier(); }"
    analysis = analyze_program(parse_program(src), instrument_all=True)
    _, report = instrument_program(analysis)
    assert report.cc_calls == 1
    assert report.return_ccs == 1


def test_original_ast_not_mutated_by_default():
    analysis = analyze_program(parse_program(FLAGGED))
    before = pretty(analysis.program)
    instrument_program(analysis)
    assert pretty(analysis.program) == before


def test_in_place_mutates():
    analysis = analyze_program(parse_program(FLAGGED))
    program, _ = instrument_program(analysis, in_place=True)
    assert program is analysis.program
    assert find_calls(analysis.program, "PARCOACH_CC")


def test_instrumented_program_reparses_and_rechecks():
    from repro.minilang.parser import parse_program as reparse
    from repro.minilang.semantics import check_program

    _, program, _ = instrumented_of(FLAGGED)
    text = pretty(program)
    reparsed = reparse(text)
    errors = [i for i in check_program(reparsed) if i.severity == "error"]
    assert errors == []


def test_instrumentation_preserves_clean_run_behaviour():
    src = """
void main() {
    float r = 1.0;
    float g = 0.0;
    for (int step = 0; step < 3; step += 1) {
        MPI_Allreduce(r, g, "sum");
    }
    print(g);
}
"""
    analysis = analyze_program(parse_program(src))
    assert not analysis.verified  # loop warning (conservative)
    program, _ = instrument_program(analysis)
    raw = run_program(parse_program(src), nprocs=2, timeout=5.0)
    inst = run_program(program, nprocs=2, group_kinds=analysis.group_kinds, timeout=5.0)
    assert raw.ok and inst.ok
    assert raw.outputs == inst.outputs
    assert inst.cc_calls > 0


def test_callee_of_flagged_function_instrumented():
    src = """
void sync_all() { MPI_Barrier(); }
void main() {
    int r = MPI_Comm_rank();
    if (r == 0) { sync_all(); }
}
"""
    analysis, program, report = instrumented_of(src)
    assert "sync_all" in report.per_function
    assert report.per_function["sync_all"] >= 2  # CC + return CC
