"""Coverage-guided fuzzing tests: signature determinism (in- and
cross-process), the energy/mutation-queue schedule, finding dedupe,
campaign-state v2, and the two campaign-driver regressions (resumed
elapsed accounting, zombie-thread quarantine)."""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.fuzz import (
    AGREE,
    CHECKPOINT_VERSION,
    CRASH,
    MUTANT_BASE,
    MUTANT_SLOTS,
    CoverageMap,
    CoverageSignature,
    FuzzReport,
    GenConfig,
    OracleConfig,
    OracleVerdict,
    decode_mutant,
    energy_for,
    finding_fingerprint_for,
    fuzz_one,
    is_mutant_seed,
    load_checkpoint,
    mutant_seed,
    mutate,
    program_for_seed,
    run_fuzz,
    run_oracle,
    signature_for,
    source_features,
    write_checkpoint,
)
from repro.fuzz.campaign import _checkpoint_doc
from repro.util import faultinject
from repro.util.faultinject import (
    FaultPlan,
    clear_plan,
    install_plan,
    quarantined_count,
    release_quarantine,
)
from repro.util.probe import bucket, collecting, probe, probes_active

#: A deliberately narrow generator: small programs from few productions, so
#: the open-loop seed stream *saturates* its signature space and the
#: feedback loop's mutants (which escape the generator's support) are
#: measurable against it.
NARROW = GenConfig(w_assign=2, w_print=0, w_collective=8, w_guard=2,
                   w_loop=0, w_parallel=3, w_single=1, w_master=0,
                   w_critical=0, w_barrier=1, w_call=0, w_expr_call=0,
                   w_return=0, w_break=0, max_helpers=0, max_stmts=2,
                   max_depth=1)


# ---------------------------------------------------------------------------
# Probe sink
# ---------------------------------------------------------------------------


def test_probe_sink_is_thread_local():
    with collecting() as counts:
        probe("x")
        done = threading.Event()

        def other():
            probe("x")  # no sink on this thread: dropped
            done.set()

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert done.is_set()
    assert counts == {"x": 1}
    probe("x")  # no sink installed: no-op
    assert not probes_active()


def test_probe_sink_nests_without_leaking():
    with collecting() as outer:
        probe("a")
        with collecting() as inner:
            probe("b")
        probe("a")
        assert inner == {"b": 1}
    assert outer == {"a": 2}


def test_bucket_is_logarithmic():
    assert [bucket(n) for n in (0, 1, 2, 3, 4, 7, 8)] == [0, 1, 2, 2, 3, 3, 4]


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------


def test_signature_determinism_in_process():
    sigs = []
    for _ in range(2):
        with collecting() as counts:
            source = program_for_seed(11)
        sigs.append(signature_for(counts, source=source,
                                  classification=AGREE))
    assert sigs[0] == sigs[1]
    assert sigs[0].digest == sigs[1].digest


_SUBPROCESS_SNIPPET = r"""
import sys
sys.path.insert(0, {src!r})
from repro.fuzz import fuzz_one
digests = []
for seed in (0, 7, 23):
    outcome = fuzz_one(seed, coverage=True, dry_run=True)
    digests.append(outcome.signature.digest)
print("|".join(digests))
"""


def test_signature_cross_process_determinism():
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    snippet = _SUBPROCESS_SNIPPET.format(src=os.path.abspath(src_dir))
    runs = [
        subprocess.run([sys.executable, "-c", snippet], capture_output=True,
                       text=True, check=True).stdout.strip()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    local = "|".join(
        fuzz_one(seed, coverage=True, dry_run=True).signature.digest
        for seed in (0, 7, 23))
    assert runs[0] == local


def test_source_features_cover_scenario_dimensions():
    source = program_for_seed(3)
    feats = source_features(source)
    assert any(f.startswith("src:") for f in feats)
    assert source_features(source) == feats  # deterministic
    assert source_features("definitely not minilang") == ["src:unparsed"]


def test_coverage_map_grows_monotonically():
    m = CoverageMap()
    last_features = 0
    last_sigs = 0
    for seed in range(25):
        outcome = fuzz_one(seed, coverage=True, dry_run=True)
        m.observe(outcome.signature)
        assert m.feature_count >= last_features
        assert m.distinct_signatures >= last_sigs
        last_features, last_sigs = m.feature_count, m.distinct_signatures
    # Round-trips through the checkpoint representation.
    clone = CoverageMap.from_dict(json.loads(json.dumps(m.as_dict())))
    assert clone.features == m.features
    assert clone.signatures == m.signatures


def test_energy_schedule():
    assert energy_for(0) == 0
    assert energy_for(0, new_signature=True) == 2
    assert energy_for(1) == 1
    assert energy_for(40) == MUTANT_SLOTS  # capped


# ---------------------------------------------------------------------------
# Mutant-seed encoding (the reproduction contract)
# ---------------------------------------------------------------------------


def test_mutant_seed_round_trip():
    for parent, slot in ((0, 0), (17, 3), (123456, MUTANT_SLOTS - 1)):
        enc = mutant_seed(parent, slot)
        assert is_mutant_seed(enc) and not is_mutant_seed(parent)
        assert decode_mutant(enc) == (parent, slot)
    nested = mutant_seed(mutant_seed(5, 1), 2)
    assert decode_mutant(nested) == (mutant_seed(5, 1), 2)
    with pytest.raises(ValueError):
        mutant_seed(1, MUTANT_SLOTS)
    with pytest.raises(ValueError):
        decode_mutant(7)


def test_mutant_seed_program_is_reproducible():
    enc = mutant_seed(6, 2)
    first = program_for_seed(enc)
    assert first == program_for_seed(enc)
    assert first != program_for_seed(6)
    # And through the full seed body, as the CLI repro would run it.
    outcome = fuzz_one(enc, coverage=True, dry_run=True)
    assert outcome.source == first


def test_mutate_rounds_one_matches_legacy_single_round():
    source = program_for_seed(2)
    assert mutate(source, 42) == mutate(source, 42, rounds=1)
    multi = mutate(source, 42, rounds=3)
    assert multi != source


# ---------------------------------------------------------------------------
# Coverage-guided campaign: schedule determinism + the acceptance property
# ---------------------------------------------------------------------------


def test_coverage_campaign_is_repeatable_and_jobs_invariant():
    runs = [
        run_fuzz(seeds=48, gen_config=NARROW, coverage=True, dry_run=True),
        run_fuzz(seeds=48, gen_config=NARROW, coverage=True, dry_run=True),
        run_fuzz(seeds=48, gen_config=NARROW, coverage=True, dry_run=True,
                 jobs=2),
    ]
    ref = runs[0]
    assert ref.completed == 48
    assert any(is_mutant_seed(s) for s in ref.queue) or ref.queue == []
    for other in runs[1:]:
        assert other.counts == ref.counts
        assert other.queue == ref.queue
        assert other.next_fresh == ref.next_fresh
        assert other.coverage_map.features == ref.coverage_map.features
        assert other.coverage_map.signatures == ref.coverage_map.signatures
        assert other.dedupe == ref.dedupe


def test_coverage_guided_beats_open_loop_on_distinct_signatures():
    """The tentpole acceptance property: on the same seed budget, the
    feedback loop reaches strictly more distinct coverage signatures than
    the open-loop seed stream."""
    budget = 500
    open_map = CoverageMap()
    for seed in range(budget):
        outcome = fuzz_one(seed, gen_config=NARROW, coverage=True,
                           dry_run=True)
        open_map.observe(outcome.signature)
    guided = run_fuzz(seeds=budget, gen_config=NARROW, coverage=True,
                      dry_run=True)
    assert guided.completed == budget
    assert (guided.coverage_map.distinct_signatures
            > open_map.distinct_signatures)
    # Feature coverage should not regress either.
    assert guided.coverage_map.feature_count >= open_map.feature_count


def test_coverage_overhead_gate():
    """The exported ``derived.fuzz_coverage_overhead`` contract: with the
    real oracle in the loop, coverage feedback must stay ≤ 1.5× the
    open-loop campaign on the same seed budget (it is a scheduling tax,
    not a second oracle)."""
    config = OracleConfig(explore_runs=2)

    def best_of(coverage):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            run_fuzz(seeds=12, coverage=coverage, oracle_config=config)
            best = min(best, time.perf_counter() - t0)
        return best

    open_t = best_of(False)
    cov_t = best_of(True)
    assert cov_t / open_t <= 1.5, (open_t, cov_t)


def test_coverage_campaign_with_real_oracle_smoke():
    report = run_fuzz(seeds=6, coverage=True,
                      oracle_config=OracleConfig(explore_runs=2))
    assert report.completed == 6
    assert report.coverage_map is not None
    assert report.coverage_map.distinct_signatures >= 1
    assert "coverage:" in report.summary()


# ---------------------------------------------------------------------------
# Dedupe
# ---------------------------------------------------------------------------


def _miss_verdict(raw: str, detail: str = "") -> OracleVerdict:
    return OracleVerdict(classification=STATIC_MISS_CLS, raw_verdict=raw,
                         crash_detail=detail)


STATIC_MISS_CLS = "static-miss"


def test_fingerprint_normalizes_seed_specific_noise():
    a = _miss_verdict("Deadlock[rank 0 stuck at line 12]",
                      "seed body: error at uid 991")
    b = _miss_verdict("Deadlock[rank 1 stuck at line 7]",
                      "seed body: error at uid 13")
    assert (finding_fingerprint_for(STATIC_MISS_CLS, a)
            == finding_fingerprint_for(STATIC_MISS_CLS, b))
    c = _miss_verdict("Mismatch[Bcast vs Barrier]")
    assert (finding_fingerprint_for(STATIC_MISS_CLS, a)
            != finding_fingerprint_for(STATIC_MISS_CLS, c))
    assert (finding_fingerprint_for(STATIC_MISS_CLS, a)
            != finding_fingerprint_for(CRASH, a))


def test_campaign_dedupes_duplicate_findings(monkeypatch):
    """Two seeds that hit the same normalized finding produce one
    disagreement entry + a duplicate count, not two entries."""
    import repro.fuzz.campaign as campaign

    def fake_oracle(source, config=None, name=""):
        return OracleVerdict(classification=STATIC_MISS_CLS,
                             raw_verdict=f"Deadlock[{name}]")

    monkeypatch.setattr(campaign, "run_oracle", fake_oracle)
    report = run_fuzz(seeds=10, gen_config=NARROW, coverage=True)
    assert report.counts[STATIC_MISS_CLS] == 10
    assert len(report.disagreements) == 1
    assert report.duplicates == 9
    assert report.distinct_findings == 1
    (fp, entry), = report.dedupe.items()
    assert entry["count"] == 10
    assert entry["classification"] == STATIC_MISS_CLS


# ---------------------------------------------------------------------------
# Checkpoint v2
# ---------------------------------------------------------------------------


def test_checkpoint_v1_rejected_with_clear_message(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({
        "version": 1, "base_seed": 0, "requested": 10, "completed": 3,
        "counts": {"agree": 3}, "disagreements": [], "overapprox_seeds": [],
    }))
    with pytest.raises(ValueError) as err:
        load_checkpoint(str(path), seeds=10, base_seed=0)
    msg = str(err.value)
    assert "version" in msg and "1" in msg
    assert "docs/fuzzing.md" in msg  # points at the migration note
    # At the CLI a bad checkpoint is a usage error (exit 2), not a
    # traceback and not a findings exit.
    from repro.cli import main as cli_main
    assert cli_main(["fuzz", "--seeds", "10", "--coverage",
                     "--checkpoint", str(path), "--resume"]) == 2


def test_checkpoint_v2_round_trips_coverage_state(tmp_path):
    path = str(tmp_path / "ck.json")
    report = run_fuzz(seeds=24, gen_config=NARROW, coverage=True,
                      dry_run=True, checkpoint=path)
    doc = json.loads(open(path).read())
    assert doc["version"] == CHECKPOINT_VERSION == 2
    loaded = load_checkpoint(path, seeds=24, base_seed=0, gen_config=NARROW)
    assert loaded.completed == report.completed
    assert loaded.coverage_map.features == report.coverage_map.features
    assert loaded.coverage_map.signatures == report.coverage_map.signatures
    assert loaded.queue == report.queue
    assert loaded.next_fresh == report.next_fresh
    assert loaded.dedupe == report.dedupe
    assert loaded.elapsed == pytest.approx(report.elapsed)


def test_checkpoint_coverage_flag_mismatch_rejected(tmp_path):
    path = str(tmp_path / "ck.json")
    run_fuzz(seeds=8, gen_config=NARROW, coverage=True, dry_run=True,
             checkpoint=path, budget=0.0)
    with pytest.raises(ValueError, match="--coverage"):
        run_fuzz(seeds=8, gen_config=NARROW, dry_run=True,
                 checkpoint=path, resume=True)


def test_kill_and_resume_matches_uninterrupted_tally_and_elapsed(tmp_path):
    ck = str(tmp_path / "ck.json")
    full = run_fuzz(seeds=40, gen_config=NARROW, coverage=True, dry_run=True)
    part = run_fuzz(seeds=40, gen_config=NARROW, coverage=True, dry_run=True,
                    checkpoint=ck, budget=0.03)
    assert part.budget_hit and part.completed < 40
    resumed = run_fuzz(seeds=40, gen_config=NARROW, coverage=True,
                       dry_run=True, checkpoint=ck, resume=True)
    assert resumed.completed == full.completed == 40
    assert resumed.counts == full.counts
    assert resumed.queue == full.queue
    assert resumed.next_fresh == full.next_fresh
    assert resumed.coverage_map.features == full.coverage_map.features
    assert resumed.coverage_map.signatures == full.coverage_map.signatures
    # The elapsed bugfix: accumulated, not overwritten by the resumed leg.
    assert resumed.elapsed > part.elapsed


# ---------------------------------------------------------------------------
# Satellite bugfix regressions
# ---------------------------------------------------------------------------


def test_resumed_campaign_accumulates_prior_elapsed(tmp_path):
    """Regression: ``run_fuzz`` used to overwrite ``elapsed`` with only the
    resumed portion, so a resumed campaign under-reported wall clock (and
    over-reported seeds/s).  The checkpoint's accumulated elapsed must be
    restored and added to."""
    ck = str(tmp_path / "ck.json")
    report = run_fuzz(seeds=6, dry_run=True, checkpoint=ck, budget=0.0)
    assert report.completed < 6  # budget stops after the first seed
    doc = json.loads(open(ck).read())
    doc["elapsed"] = 100.0  # pretend the first leg took 100 s
    with open(ck, "w") as handle:
        json.dump(doc, handle)
    resumed = run_fuzz(seeds=6, dry_run=True, checkpoint=ck, resume=True)
    assert resumed.completed == 6
    assert resumed.elapsed > 100.0
    # And the rate in the summary line reflects the accumulated elapsed.
    assert "(0.1 programs/s)" in resumed.summary() \
        or float(resumed.summary().split("(")[-1].split(" ")[0]) < 1.0


def test_timed_out_seed_zombie_is_quarantined(monkeypatch):
    """Regression: a timed-out seed's daemon thread keeps running after the
    campaign moves on.  Before the fix its fault-site calls advanced the
    shared plan's hit counters (consuming faults scheduled for later
    seeds); now the zombie ident is quarantined and its activity is
    suppressed."""
    monkeypatch.setattr(faultinject, "HANG_SECONDS", 0.25)
    plan = FaultPlan.parse("fuzz.seed:1=hang,fuzz.oracle:1=exception")
    install_plan(plan)
    try:
        config = OracleConfig(explore_runs=0)
        hung = fuzz_one(0, oracle_config=config, seed_timeout=0.05)
        assert hung.classification == CRASH
        assert "timeout" in hung.verdict.crash_detail
        assert quarantined_count() >= 1
        # Let the zombie wake up and run its oracle to completion: its
        # fuzz.oracle call must NOT advance the plan's hit counter.
        deadline = time.monotonic() + 5.0
        while (plan.hits.get("fuzz.seed", 0) < 1
               and time.monotonic() < deadline):
            time.sleep(0.05)
        time.sleep(1.0)
        assert plan.hits.get("fuzz.oracle", 0) == 0
        # The fault scheduled for the *first live* oracle run still fires
        # on the next real seed, exactly as planned.
        nxt = fuzz_one(1, oracle_config=config)
        assert nxt.classification == CRASH
        assert "injected exception at fuzz.oracle" in nxt.verdict.crash_detail
    finally:
        clear_plan()


def test_fresh_body_thread_lifts_stale_quarantine():
    """Thread idents are recycled: a fresh seed body that happens to reuse
    a quarantined ident must release it on entry (otherwise its own fault
    sites would be silently suppressed)."""
    from repro.fuzz.campaign import _call_with_timeout
    idents = []

    def record():
        idents.append(threading.get_ident())
        return "ok"

    result, timed_out = _call_with_timeout(record, timeout=5.0)
    assert result == "ok" and not timed_out
    # Simulate the ident having been quarantined by a dead zombie, then
    # reused: quarantine it by hand and run another body.
    faultinject.quarantine_thread(idents[0])
    try:
        for _ in range(50):
            result, timed_out = _call_with_timeout(record, timeout=5.0)
            assert not timed_out
            if idents[-1] == idents[0]:
                break
        if idents[-1] == idents[0]:  # ident actually reused on this platform
            assert idents[0] not in faultinject._quarantined
    finally:
        release_quarantine(idents[0])


# ---------------------------------------------------------------------------
# Campaign-found runtime bugs (the ≥5000-seed sweep, see docs/fuzzing.md)
# ---------------------------------------------------------------------------


def test_bounded_repr_digests_bigints_and_recurses():
    from repro.util.brepr import bounded_repr
    big = 1 << 20000  # well past CPython's 4300-digit int→str limit
    with pytest.raises(ValueError):
        str(big)
    digest = bounded_repr(big)
    assert digest == bounded_repr(big)  # deterministic
    assert digest.startswith("bigint:20001:")
    # Recurses through the composite observation records the scheduler
    # hashes; small values keep their exact repr.
    assert bounded_repr(("load", "x", big)) == \
        f"('load', 'x', {digest})"
    assert bounded_repr([1, (big,)]) == f"[1, ({digest},)]"
    assert bounded_repr(("one",)) == "('one',)"
    assert bounded_repr(42) == "42"
    assert bounded_repr(True) == "True"


def test_observation_hash_survives_bigint_shared_loads():
    """Regression for the coverage campaign's seed-761 crash: the
    scheduler's per-thread observation hash fed raw shared-cell values
    through ``repr``, so a squared-x loop minting a >4300-digit int
    killed the rank thread mid-load (timeout/internal-error crash).
    The corpus entry ``bigint_observation_hash`` replays the reduced
    program; here we also show the unbounded repr still fails, i.e. the
    test would catch a regression to the old behaviour."""
    import repro.explore.sched as sched
    with open(os.path.join(os.path.dirname(__file__), "corpus",
                           "bigint_observation_hash.mini"),
              encoding="utf-8") as handle:
        source = handle.read()
    config = OracleConfig(explore_runs=4)
    assert run_oracle(source, config).classification == "agree"
    original = sched.bounded_repr
    sched.bounded_repr = repr
    try:
        assert run_oracle(source, config).classification == "crash"
    finally:
        sched.bounded_repr = original


# ---------------------------------------------------------------------------
# Report IR integration
# ---------------------------------------------------------------------------


def test_report_ir_coverage_summary_is_deterministic():
    from repro.core.report import report_from_fuzz, validate_report
    reports = [
        report_from_fuzz(
            run_fuzz(seeds=16, gen_config=NARROW, coverage=True,
                     dry_run=True),
            seeds=16, base_seed=0)
        for _ in range(2)
    ]
    for doc in reports:
        assert validate_report(doc) == []
        assert doc["summary"]["coverage"]["signatures"] >= 1
    # elapsed never leaks into the IR: byte-identical across runs.
    assert json.dumps(reports[0], sort_keys=True) == \
        json.dumps(reports[1], sort_keys=True)
