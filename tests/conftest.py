"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.mpi.thread_levels import ThreadLevel


def analyze_source(src: str, **kwargs):
    """parse + analyze in one call."""
    return analyze_program(parse_program(src), **kwargs)


def run_source(src: str, nprocs: int = 2, num_threads: int = 2,
               instrument: bool = False, timeout: float = 8.0, **kwargs):
    """parse (+ optionally analyze & instrument) + run."""
    program = parse_program(src)
    group_kinds = None
    if instrument:
        analysis = analyze_program(program)
        program, _ = instrument_program(analysis)
        group_kinds = analysis.group_kinds
    return run_program(program, nprocs=nprocs, num_threads=num_threads,
                       group_kinds=group_kinds, timeout=timeout, **kwargs)


@pytest.fixture
def mk_analysis():
    return analyze_source


@pytest.fixture
def mk_run():
    return run_source
