"""End-to-end gallery: static verdicts + dynamic verdicts, raw vs instrumented.

This is the paper's core claim in executable form: the static pass warns,
the instrumentation stops the run *before* the deadlock with a precise
message, and verified programs run clean with zero checks.
"""

import pytest

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench.errors_gallery import CASES, correct_cases, erroneous_cases
from repro.runtime.errors import CollectiveMismatchError, DeadlockError


def _run_case(case, instrument: bool):
    program = parse_program(case.source, case.name)
    analysis = analyze_program(program)
    group_kinds = None
    if instrument:
        program, _ = instrument_program(analysis)
        group_kinds = analysis.group_kinds
    result = run_program(program, nprocs=case.nprocs,
                         num_threads=case.num_threads,
                         group_kinds=group_kinds, timeout=6.0)
    return analysis, result


@pytest.mark.parametrize("name", sorted(CASES))
def test_static_verdicts(name):
    case = CASES[name]
    analysis = analyze_program(parse_program(case.source, name))
    codes = {d.code for d in analysis.diagnostics}
    missing = case.expect_static - codes
    assert not missing, f"{name}: missing static warnings {missing}; got {codes}"
    if not case.expect_static and not case.runtime_errors:
        assert analysis.verified, f"{name} should be fully verified"


@pytest.mark.parametrize("name", sorted(correct_cases()))
def test_correct_cases_run_clean_instrumented(name):
    case = CASES[name]
    _, result = _run_case(case, instrument=True)
    assert result.ok, f"{name}: unexpected {result.verdict}: {result.error}"


@pytest.mark.parametrize("name", sorted(correct_cases()))
def test_correct_cases_run_clean_raw(name):
    case = CASES[name]
    _, result = _run_case(case, instrument=False)
    assert result.ok, f"{name}: unexpected {result.verdict}: {result.error}"


def _detect_with_retries(case, instrument: bool, expected, attempts: int = 5):
    """Deterministic cases must fail on the first run; schedule-dependent
    ones must fail at least once across a few runs (a single lucky
    interleaving may execute cleanly — that is the nature of the bug class),
    and every observed error must have an expected type."""
    tries = 1 if case.deterministic else attempts
    observed = []
    for _ in range(tries):
        _, result = _run_case(case, instrument=instrument)
        if result.error is not None:
            observed.append(result.error)
            assert isinstance(result.error, expected), (
                f"{case.name}: got {result.verdict} ({result.error}), "
                f"expected one of {[e.__name__ for e in expected]}"
            )
            break
    assert observed, f"{case.name}: no run failed in {tries} attempt(s)"


@pytest.mark.parametrize("name", sorted(erroneous_cases()))
def test_erroneous_cases_detected_instrumented(name):
    case = CASES[name]
    _detect_with_retries(case, instrument=True, expected=case.runtime_errors)


@pytest.mark.parametrize("name", sorted(erroneous_cases()))
def test_erroneous_cases_detected_raw(name):
    case = CASES[name]
    _detect_with_retries(case, instrument=False, expected=case.raw_errors)


def test_cc_stops_before_deadlock_with_precise_message():
    case = CASES["rank_dependent_bcast"]
    _, inst = _run_case(case, instrument=True)
    assert isinstance(inst.error, CollectiveMismatchError)
    assert inst.error.detected_by == "CC"
    msg = str(inst.error)
    assert "MPI_Bcast" in msg or "MPI_Barrier" in msg
    assert "line" in msg
    # The raw run only "detects" it as a machine-level deadlock.
    _, raw = _run_case(case, instrument=False)
    assert isinstance(raw.error, DeadlockError)
    assert raw.error.detected_by == "simulator"


def test_verified_program_executes_zero_checks():
    case = CASES["clean_masteronly"]
    analysis, result = _run_case(case, instrument=True)
    assert analysis.verified
    assert result.cc_calls == 0
    assert result.enter_checks == 0


def test_false_positive_cleared_dynamically():
    case = CASES["loop_collective_fp"]
    analysis, result = _run_case(case, instrument=True)
    assert not analysis.verified  # static warns
    assert result.ok              # dynamic validates
    assert result.cc_calls > 0    # and it actually checked
