"""Session layer: chunked incremental re-parse, fingerprint diffing,
dependency invalidation, delta reports, and the serve/watch front ends."""

import io
import json
import threading
import time

import pytest

from repro.core import analyze_program, render_report
from repro.core.report import validate_report
from repro.core.session import (
    AnalysisSession,
    SessionError,
    run_serve,
    run_watch,
    split_chunks,
)
from repro.minilang.parser import parse_program


BASE = """
int helper(int v) {
    return v + 1;
}

void worker() {
    int x = 0;
    x = helper(x);
}

void main() {
    MPI_Init_thread(0);
    worker();
    MPI_Finalize();
}
"""


def _replace(src: str, old: str, new: str) -> str:
    assert old in src, old
    return src.replace(old, new)


# -- chunk splitting ----------------------------------------------------------------


def test_split_chunks_counts_functions():
    chunks = split_chunks(BASE)
    assert chunks is not None
    assert len(chunks) == 3
    assert chunks[0].text.startswith("int helper")
    assert chunks[0].start_line == 2


def test_split_chunks_handles_strings_and_comments():
    src = """
// top comment with a stray { brace
void main() {
    /* block } comment */
    print("braces {in} a \\"string\\"");
    MPI_Barrier();  // trailing }
}
"""
    chunks = split_chunks(src)
    assert chunks is not None
    assert len(chunks) == 1
    assert chunks[0].text.startswith("void main")


def test_split_chunks_rejects_unbalanced():
    assert split_chunks("void main() {") is None
    assert split_chunks("void main() } {") is None
    assert split_chunks("void main() { /* never closed") is None


def test_chunk_parse_matches_full_parse_byte_for_byte():
    """The assembled incremental program must render exactly like a
    full-parse analysis (lines and all)."""
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    edited = _replace(BASE, "return v + 1;", "return v + 2;")
    session.update_source("p.mc", edited)
    incremental = session._files["p.mc"].program
    full = parse_program(edited, "p.mc")
    assert (render_report(analyze_program(incremental), verbose=True)
            == render_report(analyze_program(full), verbose=True))


# -- fingerprint diffing ------------------------------------------------------------


def test_first_update_analyzes_everything():
    session = AnalysisSession()
    delta = session.update_source("p.mc", BASE)
    assert delta.seq == 1
    assert set(delta.changed) == {"helper", "worker", "main"}
    assert delta.reanalyzed == ("helper", "worker", "main")
    assert not delta.no_op


def test_identical_source_is_no_op():
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    delta = session.update_source("p.mc", BASE)
    assert delta.no_op
    assert delta.changed == () and delta.reanalyzed == ()
    assert delta.seq == 2


def test_whitespace_edit_invalidates_nothing():
    """Same-line whitespace is invisible to the structural fingerprint
    (columns are excluded): nothing re-analyzes, nothing is evicted."""
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    evictions = session.engine.stats.evictions
    misses = session.engine.stats.misses
    delta = session.update_source(
        "p.mc", _replace(BASE, "int x = 0;", "int  x  =  0;"))
    assert delta.no_op
    assert delta.changed == () and delta.removed == ()
    assert delta.reanalyzed == ()
    assert delta.invalidated_entries == 0
    assert session.engine.stats.evictions == evictions
    assert session.engine.stats.misses == misses
    # The next real edit still works off the new source text.
    delta = session.update_source(
        "p.mc", _replace(BASE, "int x = 0;", "int  x  =  7;"))
    assert delta.changed == ("worker",)


def test_one_function_edit_reanalyzes_only_it():
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    delta = session.update_source(
        "p.mc", _replace(BASE, "return v + 1;", "return v + 3;"))
    assert delta.changed == ("helper",)
    # helper's summary did not change (still no collectives), so the
    # dependents are only *candidates* — nothing else actually re-ran.
    assert set(delta.dependents) == {"worker", "main"}
    assert delta.reanalyzed == ("helper",)
    assert delta.invalidated_entries == 1


def test_callee_summary_change_dirties_transitive_callers():
    """Adding a collective to a leaf helper changes the collective call
    graph, so the whole caller chain re-analyzes — and the new findings
    carry through."""
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    # Same-line edit: later functions keep their lines (and thus their
    # fingerprints) — only the dependency propagation dirties them.
    edited = _replace(BASE, "return v + 1;", "MPI_Barrier(); return v + 1;")
    delta = session.update_source("p.mc", edited)
    assert delta.changed == ("helper",)
    assert set(delta.dependents) == {"worker", "main"}
    assert set(delta.reanalyzed) == {"helper", "worker", "main"}
    assert session.engine.stats.dependency_invalidations >= 2


def test_renamed_function_moves_fingerprint():
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    edited = (BASE.replace("int helper(", "int assist(")
              .replace("helper(x)", "assist(x)"))
    delta = session.update_source("p.mc", edited)
    assert "assist" in delta.changed
    assert delta.removed == ("helper",)
    # The caller's call target changed, so it re-analyzed too.
    assert "worker" in delta.reanalyzed


def test_deleted_function_mid_session():
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    edited = """
void worker() {
    int x = 0;
}

void main() {
    MPI_Init_thread(0);
    worker();
    MPI_Finalize();
}
"""
    delta = session.update_source("p.mc", edited)
    assert delta.removed == ("helper",)
    assert "worker" in delta.changed
    assert "helper" not in delta.reanalyzed
    # The session's view matches a fresh one-shot analysis.
    state = session._files["p.mc"]
    assert set(state.fingerprints) == {"worker", "main"}


def test_parse_error_preserves_state():
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    with pytest.raises(SessionError):
        session.update_source("p.mc", BASE + "\nvoid broken( {")
    # Previous version still current; a good edit diffs against it.
    delta = session.update_source(
        "p.mc", _replace(BASE, "return v + 1;", "return v + 9;"))
    assert delta.changed == ("helper",)


def test_semantic_error_preserves_state():
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    bad = _replace(BASE, "int x = 0;", "int x = y;")  # undeclared variable
    with pytest.raises(SessionError):
        session.update_source("p.mc", bad)
    assert session._files["p.mc"].source == BASE


def test_signature_edit_rechecks_unchanged_callers():
    """Editing only a callee's signature must re-check its (textually
    unchanged) callers: worker still calls helper(x) with one argument."""
    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    bad = _replace(BASE, "int helper(int v)", "int helper(int v, int w)")
    with pytest.raises(SessionError) as exc:
        session.update_source("p.mc", bad)
    assert any("helper" in m for m in exc.value.messages)
    assert session._files["p.mc"].source == BASE


def test_intraproc_session_applies_initial_context_everywhere():
    """--no-interprocedural sessions mirror the CLI: the initial context
    word applies to every function directly."""
    from repro.parallelism import parse_word

    src = "void main() {\n    MPI_Barrier();\n}\n"
    word = parse_word("P1")
    plain = AnalysisSession(interprocedural=False)
    assert plain.update_source("p.mc", src).findings_total == 0
    seeded = AnalysisSession(interprocedural=False, entry_context=word)
    delta = seeded.update_source("p.mc", src)
    reference = analyze_program(
        parse_program(src, "p.mc"), interprocedural=False,
        initial_words={"main": word})
    assert delta.findings_total == len(reference.diagnostics) > 0


# -- finding deltas -----------------------------------------------------------------


GUARDED = """
void main() {
    MPI_Init_thread(0);
    int rank = MPI_Comm_rank();
    if (rank == 0) {
        MPI_Barrier();
    }
    MPI_Finalize();
}
"""


def test_finding_deltas_track_introduced_and_fixed_bugs():
    session = AnalysisSession()
    clean = _replace(GUARDED, "if (rank == 0) {\n        MPI_Barrier();\n    }",
                     "MPI_Barrier();")
    d1 = session.update_source("p.mc", clean)
    assert d1.findings_total == 0
    assert d1.report["verdict"] == "clean"

    d2 = session.update_source("p.mc", GUARDED)
    assert d2.findings_total == 1
    assert len(d2.findings_added) == 1
    assert d2.findings_removed == ()
    assert d2.report["verdict"] == "findings"

    d3 = session.update_source("p.mc", clean)
    assert d3.findings_total == 0
    assert d3.findings_added == ()
    assert len(d3.findings_removed) == 1
    assert d3.findings_removed[0] == d2.findings_added[0]["fingerprint"]


def test_delta_reports_validate_against_schema():
    session = AnalysisSession()
    for source in (BASE, GUARDED,
                   _replace(BASE, "return v + 1;", "return v + 4;")):
        delta = session.update_source("p.mc", source)
        assert validate_report(delta.report) == [], delta.report


def test_session_matches_oneshot_across_edit_sequence():
    """Whatever the session serves must equal a from-scratch analysis of
    the same text — for every step of an edit war."""
    session = AnalysisSession()
    steps = [
        BASE,
        _replace(BASE, "return v + 1;", "MPI_Barrier();\n    return v + 1;"),
        GUARDED,
        BASE,
        BASE,  # identical: no-op
    ]
    for source in steps:
        session.update_source("p.mc", source)
        state = session._files["p.mc"]
        fresh = analyze_program(parse_program(source, "p.mc"))
        assert (sorted(f["fingerprint"] for f in state.report["findings"])
                == sorted(f["fingerprint"] for f in
                          __import__("repro.core.report", fromlist=["x"])
                          .report_from_analysis(fresh)["findings"]))


# -- serve / watch ------------------------------------------------------------------


def test_serve_protocol(tmp_path):
    path = tmp_path / "p.mc"
    path.write_text(BASE)
    commands = io.StringIO(
        f"analyze {path}\nstats\nanalyze {path}\nbogus\nquit\n")
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=commands, stdout=out)
    assert code == 0
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(lines) == 4
    first, stats, second, error = lines
    assert first["tool"] == "serve" and first["summary"]["update"] == 1
    assert validate_report(first) == []
    assert stats["summary"]["stats"]["session"]["updates"] == 1
    assert second["summary"]["incremental"]["no_op"] is True
    assert error["verdict"] == "error"


def test_serve_emits_only_changed_findings(tmp_path):
    path = tmp_path / "p.mc"
    path.write_text(GUARDED)
    commands = io.StringIO(f"analyze {path}\nanalyze {path}\nquit\n")
    out = io.StringIO()
    with AnalysisSession() as session:
        run_serve(session, stdin=commands, stdout=out)
    first, second = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(first["findings"]) == 1
    assert second["findings"] == []  # unchanged: re-emits nothing
    assert second["summary"]["incremental"]["findings_total"] == 1
    assert second["verdict"] == "findings"
    assert validate_report(second) == []


def test_serve_survives_broken_file(tmp_path):
    path = tmp_path / "p.mc"
    path.write_text(BASE)
    commands = io.StringIO(
        f"analyze {path}\nanalyze {tmp_path / 'missing.mc'}\n"
        f"analyze {path}\nquit\n")
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=commands, stdout=out)
    assert code == 0
    lines = [json.loads(line) for line in out.getvalue().splitlines()]
    assert [doc["verdict"] for doc in lines] == ["clean", "error", "clean"]


def test_watch_reacts_to_edits(tmp_path):
    path = tmp_path / "w.mc"
    path.write_text(BASE)
    out = io.StringIO()

    def edit_soon():
        time.sleep(0.15)
        path.write_text(_replace(BASE, "return v + 1;",
                                 "MPI_Barrier(); return v + 1;"))

    editor = threading.Thread(target=edit_soon)
    editor.start()
    with AnalysisSession() as session:
        code = run_watch(session, str(path), interval=0.05, max_updates=2,
                         stdout=out)
    editor.join()
    assert code == 0
    docs = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(docs) == 2
    assert docs[0]["tool"] == "watch"
    assert docs[1]["summary"]["incremental"]["changed"] == ["helper"]


# -- engine counters ----------------------------------------------------------------


def test_stats_round_trip_through_json():
    from repro.core.engine import EngineStats

    session = AnalysisSession()
    session.update_source("p.mc", BASE)
    session.update_source(
        "p.mc", _replace(BASE, "return v + 1;", "return v + 2;"))
    stats = session.engine.stats
    restored = EngineStats.from_dict(json.loads(json.dumps(stats.as_dict())))
    assert restored == stats
    # Every exported value is a plain JSON number.
    for key, value in stats.as_dict().items():
        assert isinstance(value, (int, float)), key


# -- resilience protocol extras (see also tests/test_resilience.py) -----------------


class _StepClock:
    """A monotonic clock advancing a fixed step per call (deterministic
    deadline behaviour under test)."""

    def __init__(self, step):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


def test_serve_ping_and_request_id_echo(tmp_path):
    path = tmp_path / "s.mc"
    path.write_text(BASE)
    script = io.StringIO(f"ping\n@42 ping\n@a1 analyze {path}\nquit\n")
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=script, stdout=out)
    assert code == 0
    plain, tagged, analyzed = [json.loads(line)
                               for line in out.getvalue().splitlines()]
    assert plain["summary"]["ping"]["ok"] is True
    assert "request_id" not in plain
    assert tagged["request_id"] == "42"
    assert tagged["summary"]["ping"]["files"] == 0  # ping never analyzes
    assert analyzed["request_id"] == "a1"
    assert analyzed["verdict"] in ("clean", "findings")
    for doc in (plain, tagged, analyzed):
        assert validate_report(doc) == []


def test_serve_request_id_with_empty_command_is_an_error_report():
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=io.StringIO("@7\nquit\n"), stdout=out)
    assert code == 0
    doc = json.loads(out.getvalue())
    assert doc["request_id"] == "7"
    assert doc["verdict"] == "error"
    assert validate_report(doc) == []


def test_serve_deadline_expiry_degrades_but_still_answers(tmp_path):
    path = tmp_path / "d.mc"
    path.write_text(BASE)
    # Budget 100ms, every clock read advances 60ms: the second phase
    # checkpoint of each deadlined attempt trips, so the request walks the
    # whole ladder — timeout report, interprocedural-off retry (also
    # expires), then the cold no-deadline analysis that always answers.
    clock = _StepClock(step=0.06)
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=io.StringIO(f"analyze {path}\nquit\n"),
                         stdout=out, deadline_ms=100.0, clock=clock)
        assert session.timeouts == 1
        assert session.degraded == 1
    assert code == 0
    timeout_doc, final = [json.loads(line)
                          for line in out.getvalue().splitlines()]
    assert timeout_doc["verdict"] == "error"
    assert timeout_doc["summary"]["timeout"]["deadline_ms"] == 100.0
    assert timeout_doc["summary"]["timeout"]["site"]
    assert final["verdict"] in ("clean", "findings")
    for doc in (timeout_doc, final):
        assert validate_report(doc) == []


def test_serve_generous_deadline_is_invisible(tmp_path):
    path = tmp_path / "d.mc"
    path.write_text(BASE)
    out = io.StringIO()
    with AnalysisSession() as session:
        code = run_serve(session, stdin=io.StringIO(f"analyze {path}\nquit\n"),
                         stdout=out, deadline_ms=60000.0)
        assert session.timeouts == 0
        assert session.degraded == 0
    assert code == 0
    assert len(out.getvalue().splitlines()) == 1  # just the delta report


def test_watch_dedups_errors_and_reemits_on_change(tmp_path):
    path = tmp_path / "w.mc"
    path.write_text("void main() {\n")  # parse error A
    out = io.StringIO()
    polls = {"n": 0}

    def fake_sleep(_interval):
        # The watch loop polls between sleeps: several polls see each
        # broken revision, but each distinct error must report only once.
        polls["n"] += 1
        if polls["n"] == 3:
            path.write_text("void main() { @ }\n")  # different parse error B
        elif polls["n"] == 6:
            path.write_text(BASE)  # recovered

    with AnalysisSession() as session:
        code = run_watch(session, str(path), interval=0, max_updates=3,
                         stdout=out, sleep=fake_sleep)
    assert code == 0
    docs = [json.loads(line) for line in out.getvalue().splitlines()]
    assert len(docs) == 3  # errA once, errB once, recovery delta once
    assert docs[0]["verdict"] == "error"
    assert docs[1]["verdict"] == "error"
    assert docs[0]["summary"]["errors"] != docs[1]["summary"]["errors"]
    assert docs[2]["verdict"] in ("clean", "findings")
    assert docs[2]["tool"] == "watch"
    for doc in docs:
        assert validate_report(doc) == []
