"""Scale benchmark — analysis walltime vs. program size, per engine config.

Sweeps the synthetic size ladder of ``repro.bench.scale`` through four
configurations of the analysis engine:

* ``cold``     — fresh engine per run, caching off: the pre-engine baseline
  (what a one-shot ``parcoach analyze`` pays);
* ``warm``     — shared engine re-analyzing the same loaded program: the
  batch-server steady state (identity fast path, all hits);
* ``reparse``  — shared engine, but every round re-parses the source: hits
  are served by remapping cached artifacts onto the new AST;
* ``parallel`` — caching off, per-function phases fanned out to worker
  processes (``jobs=2``).

``test_warm_speedup_threshold`` is the regression gate for the PR's claim:
warm-cache batch analysis must be at least 5x faster than cold sequential at
the largest synthetic size.  ``test_dominates_is_o1`` guards the O(1)
dominance queries: per-query cost must not grow with CFG depth (the old
parent-chain walk grew linearly).

The ``calltree`` series measures the interprocedural layer on deep call
trees (``repro.bench.scale.CALLTREE_SIZES``): ``interproc`` is the full
context-propagation analysis, ``intraproc`` the per-function baseline on
the same program — their ratio (``derived.interproc_overhead`` in
``BENCH_scale.json``) is the cost of the call-graph fixpoint plus the
context-split function analyses.

Run ``python benchmarks/export_bench.py`` to refresh ``BENCH_scale.json``.
"""

import time

import pytest

from repro.bench.scale import CALLTREE_SIZES, calltree_suite, SCALE_SIZES, scale_suite
from repro.cfg import CFG, BlockKind, dominators
from repro.core import AnalysisEngine
from repro.minilang.parser import parse_program

SIZES = tuple(SCALE_SIZES)
LARGEST = SIZES[-1]
CALLTREES = tuple(CALLTREE_SIZES)


@pytest.fixture(scope="module")
def sources():
    return scale_suite()


@pytest.fixture(scope="module")
def programs(sources):
    return {name: parse_program(src, name) for name, src in sources.items()}


@pytest.mark.parametrize("size", SIZES)
def test_scale_cold(benchmark, programs, size):
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "cold"
    result = benchmark(lambda: AnalysisEngine(cache=False).analyze(programs[size]))
    assert result.functions


@pytest.mark.parametrize("size", SIZES)
def test_scale_warm(benchmark, programs, size):
    engine = AnalysisEngine()
    engine.analyze(programs[size])  # fill the cache
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "warm"
    result = benchmark(lambda: engine.analyze(programs[size]))
    assert result.functions
    assert engine.stats.hits > 0


@pytest.mark.parametrize("size", SIZES)
def test_scale_warm_reparse(benchmark, sources, programs, size):
    """Warm engine, fresh parse per round: hits remap onto the new AST."""
    engine = AnalysisEngine()
    engine.analyze(programs[size])  # fill the cache
    src = sources[size]
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "reparse"
    result = benchmark.pedantic(
        engine.analyze,
        setup=lambda: ((parse_program(src, size),), {}),
        rounds=5,
    )
    assert result.functions
    assert engine.stats.remaps > 0


@pytest.mark.parametrize("size", SIZES)
def test_scale_parallel(benchmark, programs, size):
    with AnalysisEngine(jobs=2, cache=False) as engine:
        benchmark.extra_info["size"] = size
        benchmark.extra_info["config"] = "parallel"
        result = benchmark(lambda: engine.analyze(programs[size]))
        assert result.functions


# -- interprocedural call-tree series ----------------------------------------------


@pytest.fixture(scope="module")
def calltree_programs():
    return {name: parse_program(src, name)
            for name, src in calltree_suite().items()}


@pytest.mark.parametrize("size", CALLTREES)
def test_calltree_interproc(benchmark, calltree_programs, size):
    """Full interprocedural analysis (context propagation + summaries)."""
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "interproc"
    engine = AnalysisEngine(cache=False)
    result = benchmark(lambda: engine.analyze(calltree_programs[size],
                                              interprocedural=True))
    assert result.interprocedural
    # The tree shape must actually feed the propagation: some function runs
    # under a non-empty context word.
    assert any(any(w for w in fa.context_words)
               for fa in result.functions.values())


@pytest.mark.parametrize("size", CALLTREES)
def test_calltree_intraproc(benchmark, calltree_programs, size):
    """Per-function baseline on the same deep call tree."""
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "intraproc"
    engine = AnalysisEngine(cache=False)
    result = benchmark(lambda: engine.analyze(calltree_programs[size],
                                              interprocedural=False))
    assert not result.interprocedural


@pytest.mark.parametrize("size", CALLTREES)
def test_calltree_warm_interproc(benchmark, calltree_programs, size):
    """Warm engine: context-split artifacts and the interprocedural plan are
    cached, so repeated analyses only pay lookups + merge."""
    engine = AnalysisEngine()
    engine.analyze(calltree_programs[size])  # fill
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "interproc_warm"
    result = benchmark(lambda: engine.analyze(calltree_programs[size]))
    assert engine.stats.hits > 0
    assert result.functions


def test_warm_speedup_threshold(programs):
    """Acceptance gate: warm-cache batch >= 5x faster than cold sequential
    at the largest synthetic size."""
    program = programs[LARGEST]
    t0 = time.perf_counter()
    cold_engine = AnalysisEngine(cache=False)
    cold_result = cold_engine.analyze(program)
    cold = time.perf_counter() - t0

    warm_engine = AnalysisEngine()
    warm_engine.analyze(program)  # fill
    warm = min(_timed(lambda: warm_engine.analyze(program)) for _ in range(3))

    speedup = cold / warm
    assert len(cold_result.diagnostics) == len(warm_engine.analyze(program).diagnostics)
    assert speedup >= 5.0, (
        f"warm-cache batch only {speedup:.1f}x faster than cold "
        f"({cold * 1e3:.1f}ms vs {warm * 1e3:.1f}ms)"
    )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


# -- dominance query micro-benchmark ----------------------------------------------


def make_chain_cfg(depth: int) -> CFG:
    """A straight-line CFG of ``depth`` blocks — worst case for the old
    O(depth) parent-chain dominance walk."""
    cfg = CFG(f"chain{depth}")
    entry = cfg.new_block(BlockKind.ENTRY)
    cfg.entry_id = entry.id
    prev = entry.id
    for _ in range(depth):
        block = cfg.new_block(BlockKind.NORMAL)
        cfg.add_edge(prev, block.id)
        prev = block.id
    exit_ = cfg.new_block(BlockKind.EXIT)
    cfg.add_edge(prev, exit_.id)
    cfg.exit_id = exit_.id
    return cfg.freeze()


DEPTHS = (64, 1024, 4096)


def _query_batch(dom, a, b, n=2000) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        dom.dominates(a, b)
    return (time.perf_counter() - t0) / n


@pytest.mark.parametrize("depth", DEPTHS)
def test_dominates_query(benchmark, depth):
    cfg = make_chain_cfg(depth)
    dom = dominators(cfg)
    dom.dominates(cfg.entry_id, cfg.exit_id)  # build intervals once
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["config"] = "dominates"
    assert benchmark(dom.dominates, cfg.entry_id, cfg.exit_id)


def test_dominates_is_o1():
    """Per-query time must not grow with CFG depth (the chain walk did)."""
    per_query = {}
    for depth in (DEPTHS[0], DEPTHS[-1]):
        cfg = make_chain_cfg(depth)
        dom = dominators(cfg)
        dom.dominates(cfg.entry_id, cfg.exit_id)  # build intervals once
        per_query[depth] = min(
            _query_batch(dom, cfg.entry_id, cfg.exit_id) for _ in range(3)
        )
    ratio = per_query[DEPTHS[-1]] / per_query[DEPTHS[0]]
    # 64 -> 4096 is a 64x depth increase; the old walk scaled ~linearly.
    # O(1) intervals should stay flat — allow generous timing noise.
    assert ratio < 5.0, f"dominates grew {ratio:.1f}x from depth {DEPTHS[0]} to {DEPTHS[-1]}"
