"""Claim C2b — the cost of the runtime checks is low thanks to selective
instrumentation.

Measures execution time of *correct* programs (the conservative static
warnings make them carry checks) raw vs instrumented, and of a fully
verified program (zero checks — instrumentation must cost exactly nothing).
"""

import pytest

from repro import analyze_program, instrument_program, parse_program, run_program

#: A correct hybrid kernel that still draws the conservative loop warning —
#: the representative case for instrumented production runs.
LOOPED = """
void main() {
    MPI_Init_thread(2);
    float local = 1.0;
    float global = 0.0;
    for (int step = 0; step < 15; step += 1) {
        #pragma omp parallel num_threads(2)
        {
            #pragma omp single
            { MPI_Allreduce(local, global, "sum"); }
        }
        work(200);
    }
    MPI_Finalize();
}
"""

#: Fully verified: straight-line collectives, no warnings, no checks.
VERIFIED = """
void main() {
    MPI_Init_thread(0);
    float local = 1.0;
    float global = 0.0;
    MPI_Allreduce(local, global, "sum");
    MPI_Barrier();
    work(3000);
    MPI_Barrier();
    MPI_Finalize();
}
"""


def _prepare(src):
    analysis = analyze_program(parse_program(src))
    program, report = instrument_program(analysis)
    return analysis, program, report


@pytest.mark.parametrize("variant", ["raw", "instrumented"])
def test_exec_time_looped_collectives(benchmark, variant):
    analysis, instrumented, _ = _prepare(LOOPED)
    program = instrumented if variant == "instrumented" else analysis.program
    kinds = analysis.group_kinds if variant == "instrumented" else None

    def run():
        return run_program(program, nprocs=2, num_threads=2,
                           group_kinds=kinds, timeout=10.0)

    result = benchmark(run)
    assert result.ok, result.error
    benchmark.extra_info["cc_calls"] = result.cc_calls


@pytest.mark.parametrize("variant", ["raw", "instrumented"])
def test_exec_time_verified_program(benchmark, variant):
    analysis, instrumented, report = _prepare(VERIFIED)
    assert analysis.verified and report.total == 0
    program = instrumented if variant == "instrumented" else analysis.program

    def run():
        return run_program(program, nprocs=2, num_threads=2,
                           group_kinds=analysis.group_kinds, timeout=10.0)

    result = benchmark(run)
    assert result.ok
    assert result.cc_calls == 0  # selective instrumentation: zero checks
