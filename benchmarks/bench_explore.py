"""Exploration throughput benchmark — schedules per second.

Each round executes a fixed batch of deterministic scheduled runs over the
seeded interleaving-dependent gallery programs; ``extra_info["schedules"]``
lets ``export_bench.py`` derive ``schedules_per_sec`` into
``BENCH_scale.json`` so the exploration engine's throughput is tracked PR
over PR alongside the static-analysis numbers.

Configs:

* ``explore_dfs``     — bounded-preemption DFS (the ``parcoach explore``
  default for small programs);
* ``explore_dpor``    — the same sweep under dynamic partial-order
  reduction: the full bounded tree's verdicts from a fraction of the runs.
  ``extra_info["dfs_equivalent_schedules"]`` carries the raw tree size so
  ``export_bench.py`` derives ``dpor_reduction`` (tree size / dpor runs)
  and ``effective_schedules_per_sec`` (tree size / wall time);
* ``explore_random``  — seeded-random sampling (the large-program mode);
* ``explore_replay``  — straight-line scripted replay of one recorded
  trace (the floor: scheduling overhead without exploration bookkeeping);
* ``explore_decisions`` — per-decision scheduler overhead: one fixed run,
  ``extra_info["decisions"]`` → ``decisions_per_sec`` (tracks the
  incremental sorted ready list against the old sort-per-decision cost).

``test_dpor_reduction_threshold`` is the acceptance gate for the ISSUE's
headline number: at nt=3 on the racy single/allreduce seed, DPOR must
cover the DFS verdict set with >= 10x fewer schedules.
"""

import pytest

from repro.bench.errors_gallery import CASES
from repro.explore import (
    DefaultStrategy,
    ExploreConfig,
    RandomStrategy,
    ScheduleTrace,
    explore_config,
    replay,
    run_scheduled,
)
from repro.minilang.parser import parse_program

CASE = "racy_single_worker_allreduce"
SCHEDULES = 16
CFG = ExploreConfig(nprocs=2, num_threads=2)
#: The reduction benchmark sweeps the full bounded tree at three threads.
CFG_NT3 = ExploreConfig(nprocs=2, num_threads=3)
EXHAUSTIVE = 5000


@pytest.fixture(scope="module")
def program():
    return parse_program(CASES[CASE].source, CASE)


def test_explore_dfs_rate(benchmark, program):
    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_dfs"
    benchmark.extra_info["schedules"] = SCHEDULES

    def go():
        return explore_config(program, CFG, strategy="dfs", runs=SCHEDULES,
                              preemptions=1, minimize=False)

    report = benchmark(go)
    assert report.schedules == SCHEDULES
    assert report.failed > 0  # DFS reaches failing interleavings


@pytest.fixture(scope="module")
def dfs_tree_size(program):
    """Size of the full bounded-DFS tree at nt=3 — what DPOR replaces."""
    report = explore_config(program, CFG_NT3, strategy="dfs",
                            runs=EXHAUSTIVE, preemptions=1, minimize=False)
    assert report.schedules < EXHAUSTIVE  # exhausted, not truncated
    return report.schedules


def test_explore_dpor_rate(benchmark, program, dfs_tree_size):
    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_dpor"

    def go():
        return explore_config(program, CFG_NT3, strategy="dpor",
                              runs=EXHAUSTIVE, preemptions=1, minimize=False)

    report = benchmark(go)
    benchmark.extra_info["schedules"] = report.schedules
    benchmark.extra_info["dfs_equivalent_schedules"] = dfs_tree_size
    assert report.failed > 0  # the reduced sweep still reaches the bug


def test_dpor_reduction_threshold(program, dfs_tree_size):
    """Acceptance gate: at nt=3, DPOR covers the DFS verdict set with
    >= 10x fewer schedules."""
    dfs = explore_config(program, CFG_NT3, strategy="dfs",
                         runs=EXHAUSTIVE, preemptions=1, minimize=False)
    dpor = explore_config(program, CFG_NT3, strategy="dpor",
                          runs=EXHAUSTIVE, preemptions=1, minimize=False)
    assert set(dpor.verdict_counts) == set(dfs.verdict_counts)
    reduction = dfs.schedules / max(1, dpor.schedules)
    assert reduction >= 10.0, (
        f"dpor only {reduction:.1f}x smaller than the raw tree "
        f"({dpor.schedules} vs {dfs.schedules} schedules)"
    )


def test_explore_decision_rate(benchmark, program):
    """Per-decision scheduler overhead: a single deterministic run, rate
    normalized by its decision count."""
    _, trace = run_scheduled(program, CFG_NT3, DefaultStrategy())
    decisions = len(trace.choices)
    assert decisions > 0

    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_decisions"
    benchmark.extra_info["decisions"] = decisions

    def go():
        result, t = run_scheduled(program, CFG_NT3, DefaultStrategy())
        assert len(t.choices) == decisions
        return result

    benchmark(go)


def test_explore_random_rate(benchmark, program):
    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_random"
    benchmark.extra_info["schedules"] = SCHEDULES

    def go():
        return explore_config(program, CFG, strategy="random", runs=SCHEDULES,
                              preemptions=3, seed=0, minimize=False)

    report = benchmark(go)
    assert report.schedules == SCHEDULES


def test_explore_replay_rate(benchmark, program):
    _, trace = run_scheduled(program, CFG, RandomStrategy(seed=0))
    trace = ScheduleTrace.from_dict(trace.to_dict())  # serialized-path cost

    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_replay"
    benchmark.extra_info["schedules"] = SCHEDULES

    def go():
        for _ in range(SCHEDULES):
            result, _new, divergences = replay(program, trace)
            assert divergences == 0
        return result

    benchmark(go)
