"""Exploration throughput benchmark — schedules per second.

Each round executes a fixed batch of deterministic scheduled runs over the
seeded interleaving-dependent gallery programs; ``extra_info["schedules"]``
lets ``export_bench.py`` derive ``schedules_per_sec`` into
``BENCH_scale.json`` so the exploration engine's throughput is tracked PR
over PR alongside the static-analysis numbers.

Configs:

* ``explore_dfs``     — bounded-preemption DFS (the ``parcoach explore``
  default for small programs);
* ``explore_random``  — seeded-random sampling (the large-program mode);
* ``explore_replay``  — straight-line scripted replay of one recorded
  trace (the floor: scheduling overhead without exploration bookkeeping).
"""

import pytest

from repro.bench.errors_gallery import CASES
from repro.explore import (
    ExploreConfig,
    RandomStrategy,
    ScheduleTrace,
    explore_config,
    replay,
    run_scheduled,
)
from repro.minilang.parser import parse_program

CASE = "racy_single_worker_allreduce"
SCHEDULES = 16
CFG = ExploreConfig(nprocs=2, num_threads=2)


@pytest.fixture(scope="module")
def program():
    return parse_program(CASES[CASE].source, CASE)


def test_explore_dfs_rate(benchmark, program):
    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_dfs"
    benchmark.extra_info["schedules"] = SCHEDULES

    def go():
        return explore_config(program, CFG, strategy="dfs", runs=SCHEDULES,
                              preemptions=1, minimize=False)

    report = benchmark(go)
    assert report.schedules == SCHEDULES
    assert report.failed > 0  # DFS reaches failing interleavings


def test_explore_random_rate(benchmark, program):
    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_random"
    benchmark.extra_info["schedules"] = SCHEDULES

    def go():
        return explore_config(program, CFG, strategy="random", runs=SCHEDULES,
                              preemptions=3, seed=0, minimize=False)

    report = benchmark(go)
    assert report.schedules == SCHEDULES


def test_explore_replay_rate(benchmark, program):
    _, trace = run_scheduled(program, CFG, RandomStrategy(seed=0))
    trace = ScheduleTrace.from_dict(trace.to_dict())  # serialized-path cost

    benchmark.extra_info["size"] = CASE
    benchmark.extra_info["config"] = "explore_replay"
    benchmark.extra_info["schedules"] = SCHEDULES

    def go():
        for _ in range(SCHEDULES):
            result, _new, divergences = replay(program, trace)
            assert divergences == 0
        return result

    benchmark(go)
