"""Claim C3 (ablation) — selective instrumentation vs blanket instrumentation.

PARCOACH's selectivity: only functions the static pass could not verify (and
the collective-containing functions they reach) get checks.  The ablation
compares inserted-check counts and execution time against ``instrument_all``
(a MUST-style blanket scheme) on a program that is mostly verified.
"""

import pytest

from repro import analyze_program, instrument_program, parse_program, run_program

#: One flagged function among several verified ones.
MIXED = """
void verified_phase(int n) {
    float a = 1.0;
    float b = 0.0;
    MPI_Allreduce(a, b, "sum");
    MPI_Barrier();
    work(n);
}

void another_verified(int n) {
    MPI_Barrier();
    work(n);
    MPI_Barrier();
}

void flagged_phase() {
    int r = MPI_Comm_rank();
    if (r == 0) {
        MPI_Barrier();
    }
    MPI_Barrier();
}

void main() {
    MPI_Init_thread(0);
    verified_phase(100);
    another_verified(100);
    verified_phase(100);
    another_verified(100);
    verified_phase(100);
    another_verified(100);
    MPI_Finalize();
}
"""


def _instrumented(instrument_all):
    analysis = analyze_program(parse_program(MIXED), instrument_all=instrument_all)
    program, report = instrument_program(analysis)
    return analysis, program, report


def test_selective_inserts_fewer_checks():
    _, _, selective = _instrumented(False)
    _, _, blanket = _instrumented(True)
    assert selective.total < blanket.total
    # main never calls flagged_phase, so the whole executed call tree is
    # verified: the flagged function exists but is unreachable from main.
    assert "verified_phase" not in selective.per_function
    assert "verified_phase" in blanket.per_function


@pytest.mark.parametrize("scheme", ["selective", "blanket"])
def test_exec_time_by_scheme(benchmark, scheme):
    analysis, program, report = _instrumented(scheme == "blanket")

    def run():
        return run_program(program, nprocs=2, num_threads=2,
                           group_kinds=analysis.group_kinds, timeout=10.0)

    result = benchmark(run)
    assert result.ok, result.error
    benchmark.extra_info["inserted_checks"] = report.total
    benchmark.extra_info["executed_cc"] = result.cc_calls
    if scheme == "selective":
        # nothing executed is flagged -> zero dynamic checks
        assert result.cc_calls == 0
    else:
        assert result.cc_calls > 0
