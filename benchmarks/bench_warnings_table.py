"""Claim C1 — the compile-time pass reports typed warnings with collective
names and source lines, for every Figure 1 benchmark.

The benchmark times the analysis alone (what the "Warnings" bars add on top
of the baseline compile) and records the warning counts by error type in
``extra_info`` — the per-benchmark warning table of EXPERIMENTS.md.
"""

import pytest

from repro import analyze_program, parse_program
from repro.bench import FIGURE1_BENCHMARKS
from repro.core import ErrorCode


@pytest.mark.parametrize("name", FIGURE1_BENCHMARKS)
def test_analysis_warnings(benchmark, sources, name):
    program = parse_program(sources[name], name)
    analysis = benchmark(analyze_program, program)
    counts = {code.value: analysis.diagnostics.count(code) for code in ErrorCode}
    benchmark.extra_info.update(counts)
    benchmark.extra_info["total"] = len(analysis.diagnostics)
    benchmark.extra_info["instrumented_functions"] = len(analysis.instrumented_functions)
    # Every warning names at least one collective with a source line.
    for diag in analysis.diagnostics:
        if diag.code in (ErrorCode.COLLECTIVE_MISMATCH,
                         ErrorCode.COLLECTIVE_MULTITHREADED,
                         ErrorCode.COLLECTIVE_CONCURRENT):
            assert diag.collectives, diag
            assert all(ref.line > 0 for ref in diag.collectives), diag
    assert len(analysis.diagnostics) >= 1
