"""Fuzzing throughput benchmark — differential-oracle programs per second.

Each round pushes a fixed batch of seeded programs through the pipeline;
``extra_info["programs"]`` lets ``export_bench.py`` derive
``fuzz_programs_per_sec`` into ``BENCH_scale.json``, tracking the cost of
one fuzz seed PR over PR next to the analysis and exploration numbers.

Configs:

* ``fuzz_generate`` — generation + well-formedness gate only (the grammar
  floor: how fast seeds can be minted);
* ``fuzz_oracle``   — the full differential oracle (two static analyses,
  instrumentation, two scheduled runs, bounded DFS sweep) — the number the
  campaign's seeds/sec ultimately follows;
* ``fuzz_campaign_open`` / ``fuzz_campaign_coverage`` — the campaign
  driver end to end (real oracle), open-loop vs coverage-guided on the
  same seed budget.  ``export_bench.py`` derives
  ``fuzz_coverage_overhead`` from the ratio (the feedback machinery —
  probe collection, signature hashing, map folding, queue scheduling —
  must stay a scheduling tax next to the oracle; gated ≤ 1.5× by
  ``tests/test_fuzz_coverage.py``) and ``distinct_findings_per_kseed``
  from ``extra_info["distinct_findings"]``.
"""

import pytest

from repro.fuzz import (
    GenConfig,
    OracleConfig,
    generate_program,
    run_fuzz,
    run_oracle,
)

PROGRAMS = 8
SEEDS = tuple(range(PROGRAMS))
GEN = GenConfig()
#: A slimmer sweep than the CLI default keeps benchmark rounds short while
#: still exercising every oracle phase.
ORACLE = OracleConfig(explore_runs=6)

#: Seed budget for the campaign-driver pair — small enough for short
#: rounds, large enough that the coverage scheduler forms real waves.
CAMPAIGN_SEEDS = 16
CAMPAIGN_ORACLE = OracleConfig(explore_runs=2)


@pytest.fixture(scope="module")
def sources():
    return [generate_program(seed, GEN) for seed in SEEDS]


def test_fuzz_generate_rate(benchmark):
    benchmark.extra_info["size"] = f"{PROGRAMS}seeds"
    benchmark.extra_info["config"] = "fuzz_generate"
    benchmark.extra_info["programs"] = PROGRAMS

    def go():
        return [generate_program(seed, GEN) for seed in SEEDS]

    out = benchmark(go)
    assert len(out) == PROGRAMS


def test_fuzz_oracle_rate(benchmark, sources):
    benchmark.extra_info["size"] = f"{PROGRAMS}seeds"
    benchmark.extra_info["config"] = "fuzz_oracle"
    benchmark.extra_info["programs"] = PROGRAMS

    def go():
        return [run_oracle(src, ORACLE) for src in sources]

    verdicts = benchmark(go)
    assert len(verdicts) == PROGRAMS
    # The acceptance invariant holds inside the benchmark too.
    assert all(v.classification in ("agree", "static-overapprox")
               for v in verdicts)


def test_fuzz_campaign_open_rate(benchmark):
    benchmark.extra_info["size"] = f"{CAMPAIGN_SEEDS}seeds"
    benchmark.extra_info["config"] = "fuzz_campaign_open"
    benchmark.extra_info["programs"] = CAMPAIGN_SEEDS

    def go():
        return run_fuzz(seeds=CAMPAIGN_SEEDS, gen_config=GEN,
                        oracle_config=CAMPAIGN_ORACLE)

    report = benchmark(go)
    assert report.completed == CAMPAIGN_SEEDS
    benchmark.extra_info["distinct_findings"] = report.distinct_findings


def test_fuzz_campaign_coverage_rate(benchmark):
    benchmark.extra_info["size"] = f"{CAMPAIGN_SEEDS}seeds"
    benchmark.extra_info["config"] = "fuzz_campaign_coverage"
    benchmark.extra_info["programs"] = CAMPAIGN_SEEDS

    def go():
        return run_fuzz(seeds=CAMPAIGN_SEEDS, gen_config=GEN, coverage=True,
                        oracle_config=CAMPAIGN_ORACLE)

    report = benchmark(go)
    assert report.completed == CAMPAIGN_SEEDS
    assert report.coverage_map is not None
    benchmark.extra_info["distinct_findings"] = report.distinct_findings
    benchmark.extra_info["signatures"] = report.coverage_map.distinct_signatures
