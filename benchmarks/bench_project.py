"""Project-session benchmark — cold analyze vs one-file edit vs line patch.

Measures the tentpole claims of the project layer on the generated 100-file
project (``repro.bench.make_project``: ~200 functions, call chains crossing
every file boundary, one seeded cross-file bug):

* ``project_cold``  — a fresh :class:`repro.project.ProjectSession` running
  its first ``update_all`` (read + parse + merged cross-file analysis +
  report for every file): what one-shot ``parcoach project analyze`` pays.
* ``project_edit``  — a warm session folding in a one-line edit of one
  function in one file: chunked re-parse of that file, global fingerprint
  diff, cross-file dependent closure, re-analysis of the closure only.
* ``project_patch`` — a warm session folding in a line *insertion* above
  every function of one file: the pure line-offset patch path — cached
  artifacts shift in place, zero engine misses.

``derived.project_edit_speedup`` / ``derived.project_patch_speedup`` in
``BENCH_scale.json`` are the cold/edit and cold/patch ratios;
``test_project_edit_speedup_threshold`` is the ≥ 5x regression gate.

``project_edit`` additionally runs on the 1000-file XXL shape
(``repro.bench.PROJECT_SIZES``); ``derived.project_assembly_speedup`` is
the P1000/P100 per-edit ratio and
``test_project_assembly_scaling_threshold`` gates it ≤ 2x — a one-file
edit must cost O(edit + dependents), not O(project).

The shared store is disabled throughout so rounds measure engine work, not
disk reuse.
"""

import gc
import itertools
import os
import time

import pytest

from repro.bench import make_project, write_project
from repro.project import ProjectSession

SIZE = "P100"
EDIT_FILE = "m050.mc"
EDIT_FUNC = "m50_f0"

XXL_SIZE = "P1000"
XXL_EDIT_FILE = "m500.mc"
XXL_EDIT_FUNC = "m500_f0"

#: Distinct one-line replacements — consecutive rounds must really edit.
_VALUES = ("v += 50;\n    v += 1;", "v += 50;\n    v += 2;",
           "v += 50;\n    v += 3;", "v += 50;\n    v += 4;",
           "v += 50;\n    v += 5;", "v += 50;\n    v += 6;")


@pytest.fixture(scope="module")
def files():
    return make_project(n_files=100)


@pytest.fixture(scope="module")
def files_xxl():
    return make_project(n_files=1000)


def _materialize(files, tmp_path_factory, tag):
    root = str(tmp_path_factory.mktemp(tag))
    write_project(files, root)
    return root


def _write(root, rel, text):
    with open(os.path.join(root, rel), "w", encoding="utf-8") as handle:
        handle.write(text)


def test_project_cold(benchmark, files, tmp_path_factory):
    root = _materialize(files, tmp_path_factory, "cold")
    benchmark.extra_info["size"] = SIZE
    benchmark.extra_info["config"] = "project_cold"

    def cold():
        with ProjectSession(root, store=False) as session:
            return session.update_all()

    delta = benchmark(cold)
    assert delta.findings_total == 1


def test_project_one_file_edit(benchmark, files, tmp_path_factory):
    root = _materialize(files, tmp_path_factory, "edit")
    base = files[EDIT_FILE]
    variants = itertools.cycle(
        base.replace("v += 50;", value, 1) for value in _VALUES)
    benchmark.extra_info["size"] = SIZE
    benchmark.extra_info["config"] = "project_edit"
    with ProjectSession(root, store=False) as session:
        session.update_all()

        def edit(text):
            _write(root, EDIT_FILE, text)
            return session.update_file(EDIT_FILE)

        delta = benchmark.pedantic(
            edit, setup=lambda: ((next(variants),), {}), rounds=5)
        # The measured rounds were real one-function edits whose re-analysis
        # stayed inside the dependent closure, not the whole project.
        assert delta.changed == (EDIT_FUNC,)
        assert 0 < len(delta.reanalyzed) < len(session._fingerprints) // 2


def test_project_one_file_edit_xxl(benchmark, files_xxl, tmp_path_factory):
    """The same one-function edit, on the 1000-file (XXL) project — the
    ``project_edit`` pair P100/P1000 feeds ``derived.
    project_assembly_speedup`` (the per-edit scaling ratio) in
    ``BENCH_scale.json``."""
    root = _materialize(files_xxl, tmp_path_factory, "edit-xxl")
    base = files_xxl[XXL_EDIT_FILE]
    variants = itertools.cycle(
        base.replace("v += 500;", value, 1)
        for value in ("v += 500;\n    v += 1;", "v += 500;\n    v += 2;",
                      "v += 500;\n    v += 3;", "v += 500;\n    v += 4;",
                      "v += 500;\n    v += 5;", "v += 500;\n    v += 6;"))
    benchmark.extra_info["size"] = XXL_SIZE
    benchmark.extra_info["config"] = "project_edit"
    with ProjectSession(root, store=False) as session:
        session.update_all()

        def edit(text):
            _write(root, XXL_EDIT_FILE, text)
            return session.update_file(XXL_EDIT_FILE)

        delta = benchmark.pedantic(
            edit, setup=lambda: ((next(variants),), {}), rounds=5)
        assert delta.changed == (XXL_EDIT_FUNC,)
        assert 0 < len(delta.reanalyzed) < len(session._fingerprints) // 2


def test_project_line_insert_patch(benchmark, files, tmp_path_factory):
    root = _materialize(files, tmp_path_factory, "patch")
    base = files[EDIT_FILE]
    # Alternate inserting/removing a comment line above every function of
    # the file: every round is a pure ±1 line shift of unchanged chunks.
    variants = itertools.cycle(("// benchmark pad line\n" + base, base))
    benchmark.extra_info["size"] = SIZE
    benchmark.extra_info["config"] = "project_patch"
    with ProjectSession(root, store=False) as session:
        session.update_all()
        misses = session.engine.stats.misses

        def patch(text):
            _write(root, EDIT_FILE, text)
            return session.update_file(EDIT_FILE)

        delta = benchmark.pedantic(
            patch, setup=lambda: ((next(variants),), {}), rounds=5)
        # Every measured round answered from patched artifacts.
        assert delta.patched and not delta.changed and not delta.reanalyzed
        assert session.engine.stats.misses == misses


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_project_edit_speedup_threshold(files, tmp_path_factory):
    """Regression gate: on the 100-file project, a one-file edit must
    re-verdict at least 5x faster than a cold project analyze (the patch
    path is gated indirectly — it does strictly less work than the edit)."""
    root = _materialize(files, tmp_path_factory, "gate")

    def cold():
        with ProjectSession(root, store=False) as session:
            session.update_all()

    cold_s = min(_timed(cold) for _ in range(2))
    with ProjectSession(root, store=False) as session:
        session.update_all()
        edits = [files[EDIT_FILE].replace("v += 50;", value, 1)
                 for value in _VALUES[:4]]

        def edit(text):
            _write(root, EDIT_FILE, text)
            session.update_file(EDIT_FILE)

        edit_s = min(_timed(lambda t=t: edit(t)) for t in edits)
    speedup = cold_s / edit_s
    assert speedup >= 5.0, (
        f"one-file edit only {speedup:.1f}x faster than cold project "
        f"analyze ({cold_s * 1e3:.1f}ms vs {edit_s * 1e3:.1f}ms)"
    )


def _min_edit_seconds(root, files, rel, token, edits=10) -> float:
    """Warm a session on ``root``, then time ``edits`` distinct one-line
    edits of ``rel`` (GC parked during the measured region) and return the
    fastest — the steady-state per-edit cost."""
    base = files[rel]
    times = []
    with ProjectSession(root, store=False) as session:
        session.update_all()
        for i in range(edits):
            text = base.replace(token, f"{token}\n    v += {i + 1};", 1)
            _write(root, rel, text)
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            delta = session.update_file(rel)
            dt = time.perf_counter() - t0
            gc.enable()
            times.append(dt)
            assert len(delta.changed) == 1
    return min(times)


def test_project_assembly_scaling_threshold(files, files_xxl,
                                            tmp_path_factory):
    """Regression gate for O(edit) assembly: the steady-state cost of a
    one-function edit on the 1000-file project must stay within 2x of the
    identical edit on the 100-file project.  A whole-project rebuild
    anywhere on the update path (merged function list, call graph,
    contexts, summaries, report rendering) scales with project size and
    pushes this ratio toward 10x."""
    root_small = _materialize(files, tmp_path_factory, "asm-small")
    root_xxl = _materialize(files_xxl, tmp_path_factory, "asm-xxl")
    small_s = _min_edit_seconds(root_small, files, EDIT_FILE, "v += 50;")
    xxl_s = _min_edit_seconds(root_xxl, files_xxl, XXL_EDIT_FILE,
                              "v += 500;")
    ratio = xxl_s / small_s
    assert ratio <= 2.0, (
        f"one-file edit at 1000 files is {ratio:.2f}x the 100-file cost "
        f"({xxl_s * 1e3:.2f}ms vs {small_s * 1e3:.2f}ms) — project "
        f"assembly is no longer O(edit + dependents)"
    )
