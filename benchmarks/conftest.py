"""Shared fixtures for the benchmark harnesses."""

import pytest

from repro.bench import benchmark_sources


@pytest.fixture(scope="session")
def sources():
    return benchmark_sources()
