"""Claim C2a — instrumented runs stop *before* the deadlock with a precise
error; raw runs end in machine-level deadlocks.

Times the full detect-and-abort path (analysis is done once outside the
timer) for the deterministic error-gallery cases and records the verdicts in
``extra_info`` — the detection table of EXPERIMENTS.md.
"""

import pytest

from repro import analyze_program, instrument_program, parse_program, run_program
from repro.bench.errors_gallery import CASES, erroneous_cases

_DETERMINISTIC = sorted(n for n, c in erroneous_cases().items() if c.deterministic)


@pytest.mark.parametrize("name", _DETERMINISTIC)
def test_detection_latency_instrumented(benchmark, name):
    case = CASES[name]
    analysis = analyze_program(parse_program(case.source, name))
    program, _ = instrument_program(analysis)

    def detect():
        return run_program(program, nprocs=case.nprocs,
                           num_threads=case.num_threads,
                           group_kinds=analysis.group_kinds, timeout=6.0)

    result = benchmark(detect)
    assert result.error is not None
    assert isinstance(result.error, case.runtime_errors)
    benchmark.extra_info["verdict"] = result.verdict
    benchmark.extra_info["detected_by"] = result.detected_by


@pytest.mark.parametrize("name", _DETERMINISTIC)
def test_detection_latency_raw(benchmark, name):
    """The raw (uninstrumented) baseline: failures surface only when the
    simulated machine declares a deadlock."""
    case = CASES[name]
    program = parse_program(case.source, name)

    def detect():
        return run_program(program, nprocs=case.nprocs,
                           num_threads=case.num_threads, timeout=6.0)

    result = benchmark(detect)
    assert result.error is not None
    assert isinstance(result.error, case.raw_errors)
    benchmark.extra_info["verdict"] = result.verdict
    benchmark.extra_info["detected_by"] = result.detected_by
