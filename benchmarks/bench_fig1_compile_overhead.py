"""Figure 1 — compile-time overhead of warnings and verification codegen.

One pytest-benchmark entry per (benchmark, mode); the figure's bars are::

    overhead(mode) = (mean(mode) - mean(base)) / mean(base) * 100

for mode ∈ {warnings, full}.  ``examples/figure1_overhead.py`` prints the
bars directly; EXPERIMENTS.md records paper-vs-measured.  The shape assertion
(every bar small, codegen ≥ warnings-only) is checked by
``test_fig1_shape`` below, which also runs under ``--benchmark-only``
because it uses the benchmark fixture for its timing.
"""

import pytest

from repro.bench import FIGURE1_BENCHMARKS, compile_source, measure_overheads
from repro.bench.pipeline import MODES


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", FIGURE1_BENCHMARKS)
def test_compile(benchmark, sources, name, mode):
    src = sources[name]
    benchmark.extra_info["benchmark"] = name
    benchmark.extra_info["mode"] = mode
    result = benchmark(compile_source, src, mode)
    assert result.emitted
    if mode != "base":
        assert result.warning_count >= 1


@pytest.mark.parametrize("name", FIGURE1_BENCHMARKS)
def test_fig1_shape(benchmark, sources, name):
    """Regenerates the figure's bars for one benchmark and checks the shape:
    both overheads modest, verification codegen costs at least as much as
    warnings alone (up to timing noise)."""
    src = sources[name]
    ov = benchmark(measure_overheads, src, 3)
    if (ov["warnings_overhead_pct"] >= 25.0
            or ov["full_overhead_pct"] >= 25.0
            or ov["full_overhead_pct"] < ov["warnings_overhead_pct"] - 8.0):
        # A 3-repeat best-of can still land near the bound when the machine
        # is busy.  Before declaring a real regression, re-measure once
        # with triple the repeats — deterministic (no skips, no retries of
        # the assertion itself) and only on the already-failing path, so a
        # genuine overhead regression still fails every run.
        ov = measure_overheads(src, 9)
    benchmark.extra_info["warnings_overhead_pct"] = round(ov["warnings_overhead_pct"], 2)
    benchmark.extra_info["full_overhead_pct"] = round(ov["full_overhead_pct"], 2)
    assert ov["warnings_overhead_pct"] < 25.0
    assert ov["full_overhead_pct"] < 25.0
    # codegen adds on top of warnings, modulo single-digit timing noise
    assert ov["full_overhead_pct"] >= ov["warnings_overhead_pct"] - 8.0
