"""Incremental-session benchmark — one-function-edit re-analysis vs cold.

Measures the tentpole claim of the fingerprint-native refactor: a
:class:`repro.core.session.AnalysisSession` re-analyzing a program after a
one-function edit must cost work proportional to the edit, not the program.

* ``session_cold`` — a fresh session's first ``update_source`` (full parse,
  full analysis, full report): what a one-shot ``parcoach analyze`` pays,
  plus the session bookkeeping.
* ``session_edit`` — a warm session folding in a one-function, line-count
  preserving edit: chunked re-parse of the edited function only, fingerprint
  diff, dependency-aware plan update, one cache miss, delta report.

``derived.incremental_speedup`` in ``BENCH_scale.json`` is the per-size
ratio; ``test_incremental_speedup_threshold`` is the regression gate — the
one-function edit must be at least 5x cheaper than cold at the largest
synthetic size (the acceptance target is 10x, the measured value ~30x; the
gate leaves headroom for slow CI machines).
"""

import itertools
import time

import pytest

from repro.bench.scale import SCALE_SIZES, scale_suite
from repro.core.session import AnalysisSession

SIZES = tuple(SCALE_SIZES)
LARGEST = SIZES[-1]

#: Distinct same-line replacement values — consecutive benchmark rounds
#: must actually change the source (an identical update is a no-op).
_VALUES = ("3.0", "5.0", "7.0", "9.0", "11.0", "13.0", "17.0", "19.0")


def _edit_target(size: str) -> str:
    """Edit a middle function so the call-graph diff is representative."""
    return f"compute_{SCALE_SIZES[size]['n_funcs'] // 2}"


def edit_one_function(source: str, size: str, value: str) -> str:
    """Replace one literal inside one function, preserving line counts (so
    every other function keeps its line-sensitive fingerprint)."""
    name = _edit_target(size)
    start = source.index(f"void {name}(int n) {{")
    old = "float acc = 1.0;"
    at = source.index(old, start)
    return source[:at] + f"float acc = {value};" + source[at + len(old):]


@pytest.fixture(scope="module")
def sources():
    return scale_suite()


@pytest.mark.parametrize("size", SIZES)
def test_session_cold(benchmark, sources, size):
    src = sources[size]
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "session_cold"

    def cold():
        with AnalysisSession() as session:
            return session.update_source(f"{size}.mc", src)

    delta = benchmark(cold)
    assert delta.seq == 1 and not delta.no_op


@pytest.mark.parametrize("size", SIZES)
def test_session_one_function_edit(benchmark, sources, size):
    src = sources[size]
    variants = itertools.cycle(
        edit_one_function(src, size, v) for v in _VALUES)
    benchmark.extra_info["size"] = size
    benchmark.extra_info["config"] = "session_edit"
    with AnalysisSession() as session:
        session.update_source(f"{size}.mc", src)
        delta = benchmark.pedantic(
            lambda text: session.update_source(f"{size}.mc", text),
            setup=lambda: ((next(variants),), {}),
            rounds=5,
        )
    # The measured rounds really were incremental: exactly the edited
    # function re-analyzed, nothing remapped, nothing no-op'd.
    assert not delta.no_op
    assert delta.reanalyzed == (_edit_target(size),)
    assert session.engine.stats.remaps == 0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_incremental_speedup_threshold(sources):
    """Regression gate: a one-function edit to the largest synthetic
    program must re-analyze at least 5x faster than a cold session."""
    src = sources[LARGEST]
    cold = min(
        _timed(lambda: AnalysisSession().update_source("xl.mc", src))
        for _ in range(2)
    )
    with AnalysisSession() as session:
        session.update_source("xl.mc", src)
        edits = [edit_one_function(src, LARGEST, v) for v in _VALUES[:4]]
        incremental = min(
            _timed(lambda text=text: session.update_source("xl.mc", text))
            for text in edits
        )
        delta = session.update_source(
            "xl.mc", edit_one_function(src, LARGEST, "23.0"))
        assert delta.reanalyzed == (_edit_target(LARGEST),)
    speedup = cold / incremental
    assert speedup >= 5.0, (
        f"one-function edit only {speedup:.1f}x faster than cold "
        f"({cold * 1e3:.1f}ms vs {incremental * 1e3:.1f}ms)"
    )
