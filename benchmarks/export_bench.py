#!/usr/bin/env python
"""Export the scale/exploration/fuzzing benchmark results to ``BENCH_scale.json``.

Runs ``benchmarks/bench_scale.py``, ``benchmarks/bench_explore.py`` and
``benchmarks/bench_fuzz.py`` under pytest-benchmark, then compacts the raw
report into a small, diff-friendly JSON checked into the repository so the
performance trajectory is tracked PR over PR::

    PYTHONPATH=src python benchmarks/export_bench.py [-o BENCH_scale.json]

The compact schema::

    {
      "suite": "bench_scale",
      "python": "3.11.7",
      "benchmarks": [
        {"test": "test_scale_cold[XL]", "size": "XL", "config": "cold",
         "mean_s": 0.08, "stddev_s": 0.002, "rounds": 10},
        ...
      ],
      "derived": {
        "warm_speedup": {"XL": 39.5, ...},     # cold mean / warm mean
        "dominates_depth_ratio": 1.1,          # deepest / shallowest query
        "schedules_per_sec": {"explore_dfs": 410.2, ...},  # exploration rate
        "decisions_per_sec": {"explore_decisions": 9000.1},  # sched overhead
        "dpor_reduction": 90.5,                # DFS tree size / dpor runs
        "effective_schedules_per_sec": 8000.2, # DFS tree size / dpor time
        "fuzz_programs_per_sec": {"fuzz_oracle": 40.1, ...},  # oracle rate
        "interproc_overhead": {"D32": 1.6, ...},  # interproc / intraproc mean
        "project_edit_speedup": {"P100": 8.0},  # cold project / one-file edit
        "project_assembly_speedup": 1.7         # edit @P1000 / edit @P100
      }
    }
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)


def run_benchmarks(raw_json: str) -> None:
    env = dict(os.environ)
    src = os.path.join(REPO, "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    cmd = [
        sys.executable, "-m", "pytest",
        os.path.join(HERE, "bench_scale.py"),
        os.path.join(HERE, "bench_explore.py"),
        os.path.join(HERE, "bench_fuzz.py"),
        os.path.join(HERE, "bench_incremental.py"),
        os.path.join(HERE, "bench_project.py"),
        "-q", "--benchmark-only", f"--benchmark-json={raw_json}",
    ]
    subprocess.run(cmd, check=True, cwd=REPO, env=env)


def compact(raw: dict) -> dict:
    benchmarks = []
    by_config: dict = {}
    schedule_rates: dict = {}
    fuzz_rates: dict = {}
    decision_rates: dict = {}
    derived_dpor: dict = {}
    findings_per_kseed: dict = {}
    for bench in raw.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        stats = bench.get("stats", {})
        entry = {
            "test": bench.get("name"),
            "size": extra.get("size", extra.get("depth")),
            "config": extra.get("config"),
            "mean_s": round(stats.get("mean", 0.0), 9),
            "stddev_s": round(stats.get("stddev", 0.0), 9),
            "rounds": stats.get("rounds"),
        }
        benchmarks.append(entry)
        by_config.setdefault(entry["config"], {})[entry["size"]] = entry["mean_s"]
        schedules = extra.get("schedules")
        if schedules and entry["mean_s"] > 0:
            schedule_rates[entry["config"]] = round(
                schedules / entry["mean_s"], 1)
        dfs_equivalent = extra.get("dfs_equivalent_schedules")
        if dfs_equivalent and schedules:
            derived_dpor["dpor_reduction"] = round(
                dfs_equivalent / schedules, 1)
            if entry["mean_s"] > 0:
                derived_dpor["effective_schedules_per_sec"] = round(
                    dfs_equivalent / entry["mean_s"], 1)
        decisions = extra.get("decisions")
        if decisions and entry["mean_s"] > 0:
            decision_rates[entry["config"]] = round(
                decisions / entry["mean_s"], 1)
        programs = extra.get("programs")
        if programs and entry["mean_s"] > 0:
            fuzz_rates[entry["config"]] = round(
                programs / entry["mean_s"], 1)
        if (extra.get("distinct_findings") is not None and programs
                and entry["config"] == "fuzz_campaign_coverage"):
            findings_per_kseed[entry["config"]] = round(
                extra["distinct_findings"] * 1000.0 / programs, 2)

    derived: dict = {}
    cold = by_config.get("cold", {})
    warm = by_config.get("warm", {})
    speedups = {
        size: round(cold[size] / warm[size], 2)
        for size in cold if size in warm and warm[size] > 0
    }
    if speedups:
        derived["warm_speedup"] = speedups
    dom = by_config.get("dominates", {})
    if len(dom) >= 2:
        depths = sorted(dom)
        if dom[depths[0]] > 0:
            derived["dominates_depth_ratio"] = round(
                dom[depths[-1]] / dom[depths[0]], 2)
    inter = by_config.get("interproc", {})
    intra = by_config.get("intraproc", {})
    overhead = {
        size: round(inter[size] / intra[size], 2)
        for size in inter if size in intra and intra[size] > 0
    }
    if overhead:
        derived["interproc_overhead"] = overhead
    session_cold = by_config.get("session_cold", {})
    session_edit = by_config.get("session_edit", {})
    incremental = {
        size: round(session_cold[size] / session_edit[size], 2)
        for size in session_cold
        if size in session_edit and session_edit[size] > 0
    }
    if incremental:
        derived["incremental_speedup"] = incremental
    project_cold = by_config.get("project_cold", {})
    project_edit = by_config.get("project_edit", {})
    project_patch = by_config.get("project_patch", {})
    edit_speedup = {
        size: round(project_cold[size] / project_edit[size], 2)
        for size in project_cold
        if size in project_edit and project_edit[size] > 0
    }
    if edit_speedup:
        derived["project_edit_speedup"] = edit_speedup
    patch_speedup = {
        size: round(project_cold[size] / project_patch[size], 2)
        for size in project_cold
        if size in project_patch and project_patch[size] > 0
    }
    if patch_speedup:
        derived["project_patch_speedup"] = patch_speedup
    if ("P1000" in project_edit and project_edit.get("P100", 0) > 0):
        # Per-edit scaling ratio across a 10x project-size jump; gated
        # <= 2.0 by bench_project.test_project_assembly_scaling_threshold
        # (O(edit + dependents) assembly, not O(project)).
        derived["project_assembly_speedup"] = round(
            project_edit["P1000"] / project_edit["P100"], 2)
    if schedule_rates:
        derived["schedules_per_sec"] = schedule_rates
    if decision_rates:
        derived["decisions_per_sec"] = decision_rates
    derived.update(derived_dpor)
    if fuzz_rates:
        derived["fuzz_programs_per_sec"] = fuzz_rates
    campaign_open = by_config.get("fuzz_campaign_open", {})
    campaign_cov = by_config.get("fuzz_campaign_coverage", {})
    overhead_cov = {
        size: round(campaign_cov[size] / campaign_open[size], 2)
        for size in campaign_cov
        if size in campaign_open and campaign_open[size] > 0
    }
    if overhead_cov:
        # Gated ≤ 1.5× by tests/test_fuzz_coverage.py: coverage feedback
        # must stay a scheduling tax, not a second oracle.
        derived["fuzz_coverage_overhead"] = overhead_cov
    if findings_per_kseed:
        derived["distinct_findings_per_kseed"] = findings_per_kseed
    return {
        "suite": "bench_scale",
        "python": platform.python_version(),
        "machine": raw.get("machine_info", {}).get("machine"),
        "benchmarks": benchmarks,
        "derived": derived,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default=os.path.join(REPO, "BENCH_scale.json"))
    parser.add_argument("--raw", help="also keep the full pytest-benchmark "
                                      "report at this path")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = args.raw or os.path.join(tmp, "raw.json")
        run_benchmarks(raw_json)
        with open(raw_json, "r", encoding="utf-8") as handle:
            raw = json.load(handle)

    report = compact(raw)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {args.output} ({len(report['benchmarks'])} benchmarks, "
          f"derived={report['derived']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
